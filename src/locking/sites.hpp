// Lock-site primitives for MUX-based locking.
//
// A LockSite is one element of the AutoLock genotype: the tuple
// {f_i, f_j, g_i, g_j, k} from the paper. It names a *locality* in the
// original netlist: f_i currently drives g_i, f_j currently drives g_j, and
// a key-controlled MUX pair will be inserted so that a wrong key swaps the
// two paths. Node ids refer to the ORIGINAL (pre-locking) netlist, which is
// what makes sites composable genotype genes: decoding always starts from
// the same original netlist.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "locking/decode_topo.hpp"
#include "netlist/analysis.hpp"
#include "netlist/netlist.hpp"
#include "util/epoch_flags.hpp"
#include "util/rng.hpp"

namespace autolock::lock {

/// Reusable per-worker decode state: DFS marks for reachability / cycle
/// checks (every site-validity query otherwise allocates an O(V) visited
/// vector; decode repairs and GA mutations run hundreds per genotype), the
/// decode-local dynamic topological order, the buffers for the final
/// cache-priming topological sort, and the interned ids of the
/// decode-generated names.
struct ReachScratch {
  util::EpochFlags visited;
  std::vector<netlist::NodeId> stack;
  /// Working-netlist ranks + CSR fanin mirror for the incremental cycle
  /// checks; apply_sites reseeds it from the SiteContext per decode. The
  /// ranks are a decode-local overlay — nothing in the Netlist itself
  /// refers to them.
  DecodeTopo topo;
  /// Buffers for the decode-final Netlist::topological_order(TopoScratch&).
  netlist::TopoScratch topo_scratch;
  /// Fast-path token: the (design, original) pair the previous successful
  /// apply_genotype_into decoded through this scratch, plus the design
  /// netlist's structural version at that moment. When the next decode sees
  /// the same pair with the version unchanged (i.e. nobody mutated the
  /// design in between), it undoes the previous rewiring in place and
  /// recycles the key-input/MUX tail nodes instead of re-copying the
  /// original netlist and re-adding them. Cleared while a decode is in
  /// flight, so an exception can never leave a half-rewired netlist
  /// trusted.
  const void* last_design = nullptr;
  const netlist::Netlist* last_original = nullptr;
  std::uint64_t last_design_version = 0;
  /// key_names[t] = interned {keyinput<t>, keymux<t>a, keymux<t>b,
  /// keyxor<t>}, built lazily against `key_name_table` (and rebuilt if the
  /// scratch moves to a different design family). With the cache warm,
  /// apply_genotype_into never builds a name string. Holding the shared_ptr
  /// keeps the table alive, so the identity check can never be fooled by a
  /// new family's table reusing a dead table's address.
  std::shared_ptr<const netlist::NameTable> key_name_table;
  std::vector<std::array<netlist::NameId, 4>> key_names;
  /// Internal-splice candidate wires for anti-SAT gene decode (rebuilt per
  /// gene — the pool depends on the working netlist at that point).
  std::vector<std::pair<netlist::NodeId, netlist::NodeId>> splice_pool;
  /// Fanin-id assembly buffer for appended n-ary block gates.
  std::vector<netlist::NodeId> gene_fanins;
};

struct LockSite {
  netlist::NodeId f_i = netlist::kNoNode;
  netlist::NodeId f_j = netlist::kNoNode;
  netlist::NodeId g_i = netlist::kNoNode;
  netlist::NodeId g_j = netlist::kNoNode;
  bool key_bit = false;

  friend bool operator==(const LockSite&, const LockSite&) = default;
};

/// Reusable context for validating/sampling sites against one original
/// netlist (precomputes fanouts and caches reachability queries).
class SiteContext {
 public:
  explicit SiteContext(const netlist::Netlist& original);

  const netlist::Netlist& original() const noexcept { return *original_; }

  /// Deduplicated, ascending fanouts of `v` in the original netlist (the
  /// netlist's cached fanout lists, flattened to CSR at construction so
  /// sampling and reachability walk contiguous spans).
  std::span<const netlist::NodeId> fanouts(netlist::NodeId v) const noexcept {
    return {fanout_edges_.data() + fanout_offsets_[v],
            fanout_offsets_[v + 1] - fanout_offsets_[v]};
  }

  /// Structural validity against the ORIGINAL netlist:
  ///  - all four nodes exist; f_i != f_j;
  ///  - g_i is a fanout of f_i and g_j a fanout of f_j;
  ///  - neither g_i nor g_j is a primary-output-only pseudo node (always true
  ///    here since outputs reference gates);
  ///  - inserting the cross edges keeps the graph acyclic:
  ///    f_j must not be reachable from g_i, f_i not reachable from g_j.
  /// (Pairwise interactions between multiple sites are re-checked at decode
  /// time against the working netlist.)
  bool structurally_valid(const LockSite& site) const;

  /// Scratch-reusing variant (identical verdicts, no allocation once warm).
  bool structurally_valid(const LockSite& site, ReachScratch& scratch) const;

  /// True iff the two edges (f_i,g_i) and (f_j,g_j) are disjoint from the
  /// edges of every site in `taken` (no edge may be locked twice).
  static bool edges_available(const LockSite& site,
                              const std::vector<LockSite>& taken);

  /// Samples a uniformly random structurally-valid site whose edges do not
  /// collide with `taken`. Returns false if no site was found within the
  /// attempt budget (tiny or saturated circuits).
  bool sample_site(util::Rng& rng, const std::vector<LockSite>& taken,
                   LockSite& out) const;

  /// Scratch-reusing variant (identical sampling stream for a given rng).
  bool sample_site(util::Rng& rng, const std::vector<LockSite>& taken,
                   LockSite& out, ReachScratch& scratch) const;

  /// All gates that have at least one gate fanout (candidate f nodes).
  const std::vector<netlist::NodeId>& candidate_drivers() const noexcept {
    return candidate_drivers_;
  }

  /// Lockable single wires of the original netlist as (driver, sink gate)
  /// pairs, each listed once — the RLL gene domain. Excludes constant
  /// drivers (locking a constant leaks the key bit) and deduplicates
  /// multi-slot fanins (replace_fanin rewires every duplicate slot at
  /// once). Built lazily on first use; thread-safe.
  const std::vector<std::pair<netlist::NodeId, netlist::NodeId>>& rll_wires()
      const;

  /// The original's primary (non-key) inputs in creation order — the
  /// anti-SAT tap domain, cached once per context.
  const std::vector<netlist::NodeId>& primary_inputs() const noexcept {
    return primary_inputs_;
  }

  /// CSR view of the original's fanin adjacency. DecodeTopo::reset copies
  /// its edge array as the decode-time working mirror.
  const netlist::CsrFanins& fanin_csr() const noexcept { return fanin_csr_; }

  /// Sparse seed ranks for the decode-local dynamic topological order: the
  /// original's longest-path levels spaced DecodeTopo::kRankGap apart.
  /// Levels (not dense topological positions) are deliberate: they tie
  /// every pair of nodes the edges do not order, which keeps the relabel
  /// windows of accepted site insertions small.
  const std::vector<std::uint64_t>& seed_ranks() const noexcept {
    return seed_ranks_;
  }

  /// The original's nodes pre-sorted by (seed rank, id) — the base stream
  /// DecodeTopo::order_into merges the decode's touched nodes into, so the
  /// decode-final topological order costs O(V) instead of a Kahn re-sort.
  const std::vector<netlist::NodeId>& seed_order() const noexcept {
    return seed_order_;
  }

  /// seed_order's merge keys, position-aligned: entry i is the seed rank of
  /// seed_order()[i]. Lets order_into's common case stream the base lane
  /// sequentially instead of gathering rank[v] per node — at a million
  /// nodes those random reads were the last design-sized per-decode cost.
  const std::vector<std::uint64_t>& seed_order_ranks() const noexcept {
    return seed_order_ranks_;
  }

  /// Inverse of seed_order: seed_pos()[v] is the position of node v in
  /// seed_order(). order_into marks the decode's dirty nodes by position so
  /// the skip test during the merge is a sequential read too.
  const std::vector<std::uint32_t>& seed_pos() const noexcept {
    return seed_pos_;
  }

  /// Process-unique identity of this context's (fanin_csr, seed_ranks)
  /// pair. apply_sites hands it to DecodeTopo::reset so consecutive decodes
  /// against the same context take the incremental O(touched) rebind.
  std::uint64_t decode_token() const noexcept { return decode_token_; }

 private:
  bool reaches(netlist::NodeId from, netlist::NodeId target,
               ReachScratch& scratch) const;

  const netlist::Netlist* original_;
  /// CSR of the original's deduplicated fanout lists.
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<netlist::NodeId> fanout_edges_;
  std::vector<netlist::NodeId> candidate_drivers_;
  std::vector<netlist::NodeId> primary_inputs_;
  mutable std::once_flag rll_wires_once_;
  mutable std::vector<std::pair<netlist::NodeId, netlist::NodeId>> rll_wires_;
  /// Position of every node in the original's topological order. A forward
  /// path from `from` to `target` can only pass through nodes whose rank
  /// lies strictly between the endpoints' ranks, which bounds every
  /// reachability DFS (the original netlist is immutable, so the ranks
  /// never go stale).
  std::vector<std::uint32_t> topo_rank_;
  netlist::CsrFanins fanin_csr_;
  std::vector<std::uint64_t> seed_ranks_;
  std::vector<netlist::NodeId> seed_order_;
  std::vector<std::uint64_t> seed_order_ranks_;
  std::vector<std::uint32_t> seed_pos_;
  std::uint64_t decode_token_ = 0;
};

}  // namespace autolock::lock
