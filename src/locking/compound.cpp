#include "locking/compound.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

#include "locking/mux_lock.hpp"

namespace autolock::lock {

using netlist::GateType;
using netlist::NameId;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// The interned {keyinput<t>, keymux<t>a, keymux<t>b, keyxor<t>} symbols
/// for key bit `t`, from the scratch cache; interns only the first time a
/// given bit index is seen per design family. The suffixed names are
/// formatted into a stack buffer (NameTable::intern takes a string_view),
/// so even a cold cache builds no heap strings — pinned by the zero-intern
/// regression in test_mux_lock.cpp.
const std::array<NameId, 4>& key_bit_names(const Netlist& net, std::size_t t,
                                           ReachScratch& scratch) {
  netlist::NameTable& table = *net.names();
  if (scratch.key_name_table != net.names()) {
    scratch.key_name_table = net.names();
    scratch.key_names.clear();
  }
  while (scratch.key_names.size() <= t) {
    const unsigned long long bit = scratch.key_names.size();
    char buf[32];
    const auto format = [&](const char* pattern) {
      const int len = std::snprintf(buf, sizeof buf, pattern, bit);
      return table.intern({buf, static_cast<std::size_t>(len)});
    };
    const NameId key_input = format("keyinput%llu");
    const NameId mux_a = format("keymux%llua");
    const NameId mux_b = format("keymux%llub");
    const NameId key_xor = format("keyxor%llu");
    scratch.key_names.push_back({key_input, mux_a, mux_b, key_xor});
  }
  return scratch.key_names[t];
}

/// Interns pattern-%llu(index) without building a heap string. Used for the
/// anti-SAT block's internal gate names (fresh appends only — the recycle
/// path never touches names).
NameId intern_indexed(const Netlist& net, const char* pattern,
                      std::size_t index) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof buf, pattern,
                                static_cast<unsigned long long>(index));
  return net.names()->intern({buf, static_cast<std::size_t>(len)});
}

/// Decodes one MUX gene (exactly the historical per-site decode step).
/// `site` comes in as the gene's MUX view and leaves as the possibly
/// repaired site that was actually applied.
void apply_mux_gene(LockedDesign& design, const SiteContext& context,
                    LockSite& site, util::Rng& repair_rng,
                    ReachScratch& scratch, const MuxLockOptions& options,
                    std::size_t key_offset, NodeId first, bool recycled,
                    AppliedGene& rec) {
  DecodeTopo& topo = scratch.topo;
  const bool ok = context.structurally_valid(site, scratch) &&
                  SiteContext::edges_available(site, design.sites) &&
                  applicable_to_working_ranks(topo, site);
  if (!ok) {
    if (!options.repair_invalid) {
      throw std::runtime_error("apply_genotype: invalid site at key bit " +
                               std::to_string(key_offset));
    }
    bool repaired = false;
    for (int attempt = 0; attempt < 64 && !repaired; ++attempt) {
      LockSite candidate;
      if (!context.sample_site(repair_rng, design.sites, candidate, scratch)) {
        break;
      }
      if (applicable_to_working_ranks(topo, candidate)) {
        site = candidate;
        repaired = true;
      }
    }
    if (!repaired) {
      throw std::runtime_error(
          "apply_genotype: could not repair invalid site at key bit " +
          std::to_string(key_offset) + " (circuit too small or saturated)");
    }
  }

  // Wire so that select == site.key_bit restores the original paths.
  const NodeId a0 = site.key_bit ? site.f_j : site.f_i;
  const NodeId a1 = site.key_bit ? site.f_i : site.f_j;
  NodeId sel, m1, m2;
  if (recycled) {
    // Recycle the previous decode's nodes for this bit (ids, names, types
    // and is_key flags are decode-invariant within a family).
    sel = first;
    m1 = sel + 1;
    m2 = sel + 2;
    const NodeId m1_fanins[3] = {sel, a0, a1};
    const NodeId m2_fanins[3] = {sel, a1, a0};
    design.netlist.set_gate_fanins(m1, m1_fanins);
    design.netlist.set_gate_fanins(m2, m2_fanins);
  } else {
    const auto& names = key_bit_names(design.netlist, key_offset, scratch);
    sel = design.netlist.add_input(names[0], /*is_key=*/true);
    m1 = design.netlist.add_gate(GateType::kMux, {sel, a0, a1}, names[1]);
    m2 = design.netlist.add_gate(GateType::kMux, {sel, a1, a0}, names[2]);
  }
  if (design.netlist.replace_fanin(site.g_i, site.f_i, m1) == 0 ||
      design.netlist.replace_fanin(site.g_j, site.f_j, m2) == 0) {
    throw std::logic_error("apply_genotype: edge vanished during rewiring");
  }
  topo.insert_mux_pair(site.f_i, site.f_j, site.g_i, site.g_j, a0, a1, sel,
                       m1, m2);
  design.key.push_back(site.key_bit);
  design.sites.push_back(site);
  design.mux_pairs.emplace_back(m1, m2);
  rec.node_count = 3;
}

/// Decodes one RLL gene: an XOR/XNOR key gate spliced into the gene's
/// (driver, sink) wire. Invalid wires (stale after crossover, or already
/// consumed by an earlier gene) are repaired from the context's wire pool.
void apply_rll_gene(LockedDesign& design, const SiteContext& context,
                    Gene& gene, util::Rng& repair_rng, ReachScratch& scratch,
                    const MuxLockOptions& options, std::size_t key_offset,
                    NodeId first, bool recycled, AppliedGene& rec) {
  DecodeTopo& topo = scratch.topo;
  const Netlist& original = context.original();
  NodeId driver = gene.f_i;
  NodeId sink = gene.g_i;
  const auto wire_ok = [&](NodeId d, NodeId s) {
    if (d >= original.size() || s >= original.size()) return false;
    const auto type = original.node(d).type;
    if (type == GateType::kConst0 || type == GateType::kConst1) return false;
    // The wire must still exist in the WORKING netlist — an earlier gene
    // may have consumed it (its fanin slot now holds that gene's key
    // logic), in which case locking it again is meaningless.
    return topo.has_fanin(s, d);
  };
  if (!wire_ok(driver, sink)) {
    if (!options.repair_invalid) {
      throw std::runtime_error("apply_genotype: invalid RLL gene at key bit " +
                               std::to_string(key_offset));
    }
    const auto& pool = context.rll_wires();
    bool repaired = false;
    for (int attempt = 0; attempt < 64 && !repaired && !pool.empty();
         ++attempt) {
      const auto& wire = pool[repair_rng.next_below(pool.size())];
      if (topo.has_fanin(wire.second, wire.first)) {
        driver = wire.first;
        sink = wire.second;
        repaired = true;
      }
    }
    if (!repaired) {
      throw std::runtime_error(
          "apply_genotype: could not repair invalid RLL gene at key bit " +
          std::to_string(key_offset) + " (circuit too small or saturated)");
    }
  }
  const GateType gate_type =
      gene.key_bit ? GateType::kXnor : GateType::kXor;
  NodeId key_in, key_gate;
  if (recycled) {
    key_in = first;
    key_gate = first + 1;
    const NodeId gate_fanins[2] = {key_in, driver};
    design.netlist.set_gate_fanins(key_gate, gate_fanins);
    // The recycled gate may have been the other polarity last decode.
    design.netlist.set_gate_type(key_gate, gate_type);
  } else {
    const auto& names = key_bit_names(design.netlist, key_offset, scratch);
    key_in = design.netlist.add_input(names[0], /*is_key=*/true);
    key_gate = design.netlist.add_gate(gate_type, {key_in, driver}, names[3]);
  }
  if (design.netlist.replace_fanin(sink, driver, key_gate) == 0) {
    throw std::logic_error("apply_genotype: edge vanished during rewiring");
  }
  topo.insert_rll_gate(driver, sink, key_in, key_gate);
  design.key.push_back(gene.key_bit);
  gene.f_i = driver;
  gene.g_i = sink;
  rec.node_count = 2;
  rec.driver = driver;
  rec.sink = sink;
}

/// Decodes one Anti-SAT gene: the block's taps, correct key values and
/// splice location all derive from the gene-local RNG stream seeded by
/// gene.seed — identical to the standalone antisat_lock stream, so the
/// wrapper schemes reproduce their historical netlists bit for bit.
void apply_antisat_gene(LockedDesign& design, const SiteContext& context,
                        const Gene& gene, ReachScratch& scratch,
                        std::size_t key_offset, NodeId first, bool recycled,
                        AppliedGene& rec) {
  DecodeTopo& topo = scratch.topo;
  Netlist& net = design.netlist;
  const std::size_t n = gene.width;
  if (n < 2) {
    throw std::runtime_error(
        "apply_genotype: anti-SAT gene needs width >= 2 (key bit " +
        std::to_string(key_offset) + ")");
  }
  const auto& primary = context.primary_inputs();
  if (primary.size() < n) {
    throw std::runtime_error(
        "apply_genotype: circuit has too few inputs for an anti-SAT gene of "
        "width " +
        std::to_string(n));
  }
  util::Rng grng(gene.seed);
  const auto tap_indices = grng.sample_indices(primary.size(), n);

  // Node-id layout inside the gene's 4n + 4 consecutive ids:
  //   [K1 inputs x n][K2 inputs x n][x1_i, x2_i interleaved x n]
  //   [g1][g2n][b][mix]
  const NodeId k1_base = first;
  const NodeId k2_base = first + static_cast<NodeId>(n);
  const NodeId xor_base = first + static_cast<NodeId>(2 * n);
  const NodeId g1 = first + static_cast<NodeId>(4 * n);
  const NodeId g2n = g1 + 1;
  const NodeId b = g1 + 2;
  const NodeId mix = g1 + 3;
  rec.node_count = static_cast<std::uint32_t>(4 * n + 4);
  rec.width = gene.width;
  rec.splice_output = gene.splice_output;

  // K1 == K2 is the correct key; the per-bit values are drawn here, in the
  // standalone scheme's stream position (before the splice draw).
  const std::size_t key_start = design.key.size();
  for (std::size_t i = 0; i < n; ++i) design.key.push_back(grng.next_bool());
  for (std::size_t i = 0; i < n; ++i) {
    design.key.push_back(design.key[key_start + i]);
  }

  if (!recycled) {
    for (std::size_t i = 0; i < n; ++i) {
      (void)net.add_input(key_bit_names(net, key_offset + i, scratch)[0],
                          /*is_key=*/true);
    }
    for (std::size_t i = 0; i < n; ++i) {
      (void)net.add_input(key_bit_names(net, key_offset + n + i, scratch)[0],
                          /*is_key=*/true);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId tap = primary[tap_indices[i]];
    const NodeId k1 = k1_base + static_cast<NodeId>(i);
    const NodeId k2 = k2_base + static_cast<NodeId>(i);
    const NodeId x1 = xor_base + static_cast<NodeId>(2 * i);
    const NodeId x2 = x1 + 1;
    if (recycled) {
      const NodeId x1_fanins[2] = {tap, k1};
      const NodeId x2_fanins[2] = {tap, k2};
      net.set_gate_fanins(x1, x1_fanins);
      net.set_gate_fanins(x2, x2_fanins);
    } else {
      (void)net.add_gate(GateType::kXor, {tap, k1},
                         intern_indexed(net, "asat_x1_%llu", key_offset + i));
      (void)net.add_gate(GateType::kXor, {tap, k2},
                         intern_indexed(net, "asat_x2_%llu", key_offset + i));
    }
  }
  auto& fanins = scratch.gene_fanins;
  fanins.clear();
  for (std::size_t i = 0; i < n; ++i) {
    fanins.push_back(xor_base + static_cast<NodeId>(2 * i));
  }
  if (recycled) {
    net.set_gate_fanins(g1, fanins);
  } else {
    (void)net.add_gate(GateType::kAnd, {fanins.begin(), fanins.end()},
                       intern_indexed(net, "asat_g1_%llu", key_offset));
  }
  for (std::size_t i = 0; i < n; ++i) {
    fanins[i] = xor_base + static_cast<NodeId>(2 * i + 1);
  }
  if (recycled) {
    net.set_gate_fanins(g2n, fanins);
  } else {
    (void)net.add_gate(GateType::kNand, {fanins.begin(), fanins.end()},
                       intern_indexed(net, "asat_g2n_%llu", key_offset));
  }
  const NodeId b_fanins[2] = {g1, g2n};
  if (recycled) {
    net.set_gate_fanins(b, b_fanins);
  } else {
    (void)net.add_gate(GateType::kAnd, {g1, g2n},
                       intern_indexed(net, "asat_b_%llu", key_offset));
  }

  // Splice target (the last draw of the gene stream, as in the standalone
  // scheme: block first, splice second).
  NodeId displaced;
  NodeId sink = netlist::kNoNode;
  if (gene.splice_output) {
    rec.port = static_cast<std::uint32_t>(
        grng.next_below(net.outputs().size()));
    displaced = net.outputs()[rec.port].driver;
  } else {
    // Raw (undeduplicated) wire pool over everything that precedes the
    // gene's own nodes, input drivers excluded — the standalone scheme's
    // draw distribution.
    auto& pool = scratch.splice_pool;
    pool.clear();
    for (NodeId v = 0; v < first; ++v) {
      for (const NodeId fanin : net.node(v).fanins) {
        if (net.node(fanin).type == GateType::kInput) continue;
        pool.emplace_back(fanin, v);
      }
    }
    if (pool.empty()) {
      throw std::runtime_error(
          "apply_genotype: no internal wire for an anti-SAT gene to corrupt");
    }
    const auto wire = pool[grng.next_below(pool.size())];
    displaced = wire.first;
    sink = wire.second;
  }
  const NodeId mix_fanins[2] = {displaced, b};
  if (recycled) {
    net.set_gate_fanins(mix, mix_fanins);
  } else {
    (void)net.add_gate(GateType::kXor, {displaced, b},
                       intern_indexed(net, "asat_mix_%llu", key_offset));
  }
  if (gene.splice_output) {
    net.set_output_driver(rec.port, mix);
  } else if (net.replace_fanin(sink, displaced, mix) == 0) {
    throw std::logic_error("apply_genotype: wire vanished during rewiring");
  }
  rec.driver = displaced;
  rec.sink = sink;

  // Mirror the block in the dynamic order. An output-spliced block feeds no
  // working-graph node, so it floats above every current rank; an
  // internal-spliced block must fit strictly between its lows (taps and the
  // displaced driver) and the sink gate — ensure_order first demotes any
  // tap ranked at or above the sink (taps are primary inputs, so the sink
  // can never be in their fanin closure and the demote cannot fail).
  fanins.clear();
  for (std::size_t i = 0; i < n; ++i) {
    fanins.push_back(primary[tap_indices[i]]);
  }
  fanins.push_back(displaced);
  if (!gene.splice_output) {
    for (const NodeId low : fanins) {
      if (!topo.ensure_order(low, sink)) {
        throw std::logic_error(
            "apply_genotype: anti-SAT splice wire closed a cycle");
      }
    }
  }
  const DecodeTopo::BlockSlots slots = topo.block_slots(
      fanins, gene.splice_output ? netlist::kNoNode : sink, /*levels=*/5);
  const std::uint64_t r_keys = slots.base + slots.step;
  const std::uint64_t r_xors = slots.base + 2 * slots.step;
  const std::uint64_t r_gs = slots.base + 3 * slots.step;
  const std::uint64_t r_b = slots.base + 4 * slots.step;
  const std::uint64_t r_mix = slots.base + 5 * slots.step;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    topo.append_node(first + static_cast<NodeId>(i),
                     std::span<const NodeId>{}, r_keys);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId x1_fanins[2] = {primary[tap_indices[i]],
                                 k1_base + static_cast<NodeId>(i)};
    const NodeId x2_fanins[2] = {primary[tap_indices[i]],
                                 k2_base + static_cast<NodeId>(i)};
    topo.append_node(xor_base + static_cast<NodeId>(2 * i), x1_fanins, r_xors);
    topo.append_node(xor_base + static_cast<NodeId>(2 * i + 1), x2_fanins,
                     r_xors);
  }
  fanins.clear();
  for (std::size_t i = 0; i < n; ++i) {
    fanins.push_back(xor_base + static_cast<NodeId>(2 * i));
  }
  topo.append_node(g1, fanins, r_gs);
  for (std::size_t i = 0; i < n; ++i) {
    fanins[i] = xor_base + static_cast<NodeId>(2 * i + 1);
  }
  topo.append_node(g2n, fanins, r_gs);
  topo.append_node(b, b_fanins, r_b);
  topo.append_node(mix, mix_fanins, r_mix);
  if (!gene.splice_output &&
      topo.splice_fanin(sink, displaced, mix) == 0) {
    throw std::logic_error("apply_genotype: wire vanished during rewiring");
  }
}

/// Shared decode loop. `out.netlist` must already hold a copy of the
/// original netlist; key/sites/mux_pairs/genes/applied must be empty. When
/// `recycled_genes` is nonzero, the netlist additionally already contains
/// the (undone) key-logic tail nodes of a previous decode of the same
/// family and gene profile: the first `recycled_genes` genes rewrite those
/// nodes' fanins (and, for RLL, type) in place instead of appending fresh
/// nodes — same ids, same names, same resulting netlist, no allocation.
void apply_genes(LockedDesign& design, const SiteContext& context,
                 const Genotype& genes, util::Rng& repair_rng,
                 ReachScratch& scratch, const MuxLockOptions& options,
                 std::size_t recycled_genes = 0) {
  // Decode-local dynamic topological order over the working netlist: seeded
  // from the original's longest-path levels, relabelled incrementally per
  // accepted gene. Every applicability query below is an O(1) rank
  // comparison in the common case, with a rank-window-bounded DFS otherwise
  // — never the from-scratch whole-graph DFS the pre-incremental decode
  // ran.
  DecodeTopo& topo = scratch.topo;
  topo.reset(context.fanin_csr(), context.seed_ranks(),
             context.decode_token());
  NodeId next_node = static_cast<NodeId>(context.original().size());
  std::size_t key_offset = 0;
  for (std::size_t t = 0; t < genes.size(); ++t) {
    const bool recycled = t < recycled_genes;
    AppliedGene rec;
    rec.kind = genes[t].kind;
    rec.key_offset = static_cast<std::uint32_t>(key_offset);
    rec.first_node = next_node;
    switch (genes[t].kind) {
      case GeneKind::kMux: {
        LockSite site = genes[t].site();
        apply_mux_gene(design, context, site, repair_rng, scratch, options,
                       key_offset, next_node, recycled, rec);
        design.genes.push_back(Gene(site));
        break;
      }
      case GeneKind::kRll: {
        Gene gene = genes[t];
        apply_rll_gene(design, context, gene, repair_rng, scratch, options,
                       key_offset, next_node, recycled, rec);
        design.genes.push_back(gene);
        break;
      }
      case GeneKind::kAntiSat: {
        apply_antisat_gene(design, context, genes[t], scratch, key_offset,
                           next_node, recycled, rec);
        design.genes.push_back(genes[t]);
        break;
      }
    }
    design.applied.push_back(rec);
    next_node += static_cast<NodeId>(rec.node_count);
    key_offset += design.genes.back().key_bits();
  }
}

}  // namespace

LockedDesign apply_genotype(const Netlist& original,
                            const SiteContext& context, const Genotype& genes,
                            util::Rng& repair_rng,
                            const MuxLockOptions& options) {
  LockedDesign design{original, {}, {}, {}};
  design.netlist.set_name(original.name() + "_muxlocked");
  ReachScratch scratch;
  apply_genes(design, context, genes, repair_rng, scratch, options);
  design.netlist.validate();
  return design;
}

void apply_genotype_into(LockedDesign& out, const Netlist& original,
                         const SiteContext& context, const Genotype& genes,
                         util::Rng& repair_rng, ReachScratch& scratch,
                         const MuxLockOptions& options) {
  // Fast path: when this (out, original) pair is the one the previous
  // decode through this scratch produced — and the caller has not shrunk
  // the genotype's per-gene profile or mutated the design since — the
  // previous rewiring is undone in place and the key-logic tail nodes are
  // recycled, skipping the netlist copy and all node re-insertion. Falls
  // back to the full copy on any mismatch; both paths produce identical
  // designs.
  const std::size_t prev = out.applied.size();
  // The structural-version comparison makes the netlist side watertight:
  // ANY structural mutation of the netlist since the previous decode (by
  // the caller, or by a decode through a different scratch) bumps the
  // version and drops this call to the copy path.
  bool recycle =
      scratch.last_design == &out && scratch.last_original == &original &&
      scratch.last_design_version == out.netlist.structural_version() &&
      out.genes.size() == prev && genes.size() >= prev &&
      out.netlist.names() == original.names();
  // Tail nodes are only reusable gene-by-gene when the new genotype's
  // prefix has the same per-gene shape (kind, and for anti-SAT the width
  // and splice mode, which fix the node count and types).
  std::size_t expected_nodes = original.size();
  for (std::size_t t = 0; recycle && t < prev; ++t) {
    const AppliedGene& rec = out.applied[t];
    recycle = rec.kind == genes[t].kind &&
              (rec.kind != GeneKind::kAntiSat ||
               (rec.width == genes[t].width &&
                rec.splice_output == genes[t].splice_output));
    expected_nodes += rec.node_count;
  }
  recycle = recycle && out.netlist.size() == expected_nodes;
  // The version cannot see edits to the out.genes/out.applied metadata
  // vectors themselves, so additionally require every recorded splice to
  // still be wired exactly where its record says — otherwise the undo
  // below would have nothing to revert. Any mismatch falls back to the
  // copy.
  for (std::size_t t = 0; recycle && t < prev; ++t) {
    const AppliedGene& rec = out.applied[t];
    const auto wired = [&](NodeId gate, NodeId node) {
      if (gate >= out.netlist.size()) return false;
      for (NodeId f : out.netlist.node(gate).fanins) {
        if (f == node) return true;
      }
      return false;
    };
    switch (rec.kind) {
      case GeneKind::kMux:
        recycle = wired(out.genes[t].g_i, rec.first_node + 1) &&
                  wired(out.genes[t].g_j, rec.first_node + 2);
        break;
      case GeneKind::kRll:
        recycle = wired(rec.sink, rec.first_node + 1);
        break;
      case GeneKind::kAntiSat: {
        const NodeId mix = rec.first_node + rec.node_count - 1;
        if (rec.splice_output) {
          recycle = rec.port < out.netlist.outputs().size() &&
                    out.netlist.outputs()[rec.port].driver == mix;
        } else {
          recycle = wired(rec.sink, mix);
        }
        break;
      }
    }
  }
  scratch.last_design = nullptr;
  if (recycle) {
    // Revert the previous rewiring in reverse gene order: each splice
    // occupies exactly the fanin slots (or output port) of the driver it
    // displaced, and its key logic feeds nothing else.
    for (std::size_t t = prev; t-- > 0;) {
      const AppliedGene& rec = out.applied[t];
      switch (rec.kind) {
        case GeneKind::kMux: {
          const Gene& g = out.genes[t];
          if (out.netlist.replace_fanin(g.g_i, rec.first_node + 1, g.f_i) ==
                  0 ||
              out.netlist.replace_fanin(g.g_j, rec.first_node + 2, g.f_j) ==
                  0) {
            throw std::logic_error("apply_genotype_into: undo lost an edge");
          }
          break;
        }
        case GeneKind::kRll:
          if (out.netlist.replace_fanin(rec.sink, rec.first_node + 1,
                                        rec.driver) == 0) {
            throw std::logic_error("apply_genotype_into: undo lost an edge");
          }
          break;
        case GeneKind::kAntiSat: {
          const NodeId mix = rec.first_node + rec.node_count - 1;
          if (rec.splice_output) {
            out.netlist.set_output_driver(rec.port, rec.driver);
          } else if (out.netlist.replace_fanin(rec.sink, mix, rec.driver) ==
                     0) {
            throw std::logic_error("apply_genotype_into: undo lost an edge");
          }
          break;
        }
      }
    }
  } else {
    // Copy-assignment reuses the destination's node/name storage where the
    // allocator permits; the first decode into a workspace pays the full
    // copy.
    out.netlist = original;
  }
  // Rename only when the name actually differs (the recycle path arrives
  // already named) — the comparison allocates nothing.
  {
    constexpr std::string_view kSuffix = "_muxlocked";
    const std::string& base = original.name();
    const std::string& current = out.netlist.name();
    if (current.size() != base.size() + kSuffix.size() ||
        current.compare(0, base.size(), base) != 0 ||
        current.compare(base.size(), kSuffix.size(), kSuffix) != 0) {
      out.netlist.set_name(base + std::string(kSuffix));
    }
  }
  out.key.clear();
  out.sites.clear();
  out.mux_pairs.clear();
  out.genes.clear();
  out.applied.clear();
  out.sites.reserve(genes.size());
  out.genes.reserve(genes.size());
  out.applied.reserve(genes.size());
  apply_genes(out, context, genes, repair_rng, scratch, options,
              recycle ? prev : 0);
  // Prime the traversal cache every downstream attack and simulator
  // construction consumes with the order derived from the decode's dynamic
  // ranks — an O(V) merge of the context's seed order with the decode's
  // touched nodes, never the O(V + E) Kahn re-sort plus CSR fanout rebuild
  // the decode previously paid per genotype. Acyclicity is already proven
  // gene-by-gene by the dynamic order; debug builds re-verify the primed
  // order inside prime_topological_order.
  scratch.topo.order_into(context.seed_order(), context.seed_order_ranks(),
                          context.seed_pos(), scratch.topo_scratch.order);
  out.netlist.prime_topological_order(scratch.topo_scratch.order);
  scratch.last_design = &out;
  scratch.last_original = &original;
  scratch.last_design_version = out.netlist.structural_version();
}

void warm_decode_names(const Netlist& original, std::size_t key_bits,
                       ReachScratch& scratch) {
  if (key_bits != 0) {
    (void)key_bit_names(original, key_bits - 1, scratch);
  }
}

Genotype random_genotype(const SiteContext& context, std::size_t key_bits,
                         util::Rng& rng) {
  Genotype genes;
  genes.reserve(key_bits);
  std::vector<LockSite> sites;
  sites.reserve(key_bits);
  ReachScratch scratch;  // one visited set for all key bits, not one per bit
  for (std::size_t t = 0; t < key_bits; ++t) {
    LockSite site;
    if (!context.sample_site(rng, sites, site, scratch)) {
      throw std::runtime_error(
          "random_genotype: cannot place " + std::to_string(key_bits) +
          " MUX pairs in circuit '" + context.original().name() + "'");
    }
    sites.push_back(site);
    genes.push_back(Gene(site));
  }
  return genes;
}

Genotype random_genotype(const SiteContext& context, const GenotypeSpec& spec,
                         util::Rng& rng) {
  Genotype genes = random_genotype(context, spec.mux_sites, rng);
  genes.reserve(spec.mux_sites + spec.rll_gates +
                (spec.antisat_width != 0 ? 1 : 0));
  if (spec.rll_gates != 0) {
    const auto& pool = context.rll_wires();
    if (pool.size() < spec.rll_gates) {
      throw std::runtime_error("random_genotype: circuit has only " +
                               std::to_string(pool.size()) +
                               " lockable wires, need " +
                               std::to_string(spec.rll_gates));
    }
    std::vector<std::size_t> chosen;
    chosen.reserve(spec.rll_gates);
    for (std::size_t t = 0; t < spec.rll_gates; ++t) {
      // Prefer distinct wires; after a few collisions accept the duplicate
      // and let decode repair it (keeps the draw count bounded).
      std::size_t idx = 0;
      for (int attempt = 0; attempt < 16; ++attempt) {
        idx = rng.next_below(pool.size());
        bool taken = false;
        for (const std::size_t c : chosen) taken = taken || c == idx;
        if (!taken) break;
      }
      chosen.push_back(idx);
      genes.push_back(
          Gene::rll(pool[idx].first, pool[idx].second, rng.next_bool()));
    }
  }
  if (spec.antisat_width != 0) {
    genes.push_back(Gene::antisat(spec.antisat_width, rng(),
                                  spec.antisat_splice_output));
  }
  return genes;
}

std::vector<KeyBitSlot> key_layout(const Genotype& genes) {
  std::vector<KeyBitSlot> slots;
  std::size_t total = 0;
  for (const Gene& gene : genes) total += gene.key_bits();
  slots.reserve(total);
  for (std::size_t g = 0; g < genes.size(); ++g) {
    for (std::size_t b = 0; b < genes[g].key_bits(); ++b) {
      slots.push_back({g, genes[g].kind, b});
    }
  }
  return slots;
}

}  // namespace autolock::lock
