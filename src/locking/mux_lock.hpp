// Genotype decoding (scheme-polymorphic) and the D-MUX baseline.
//
// Decoding (genotype -> locked netlist) walks the tagged genes in order and
// assigns key bits in gene order. For the paper's MUX genes, each LockSite
// {f_i, f_j, g_i, g_j, k} inserts a key-controlled pair of multiplexers
//
//      M1 = MUX(keyinput_t, ., .)  -> replaces the f_i input of g_i
//      M2 = MUX(keyinput_t, ., .)  -> replaces the f_j input of g_j
//
// wired so that key bit value k restores the original paths and the wrong
// value swaps them (g_i sees f_j and g_j sees f_i). Both polarities are
// structurally symmetric — the defining property of D-MUX-style locking that
// forces attacks to reason about the surrounding locality rather than the
// key gate itself. RLL and Anti-SAT genes splice XOR/XNOR key gates and
// Anti-SAT blocks the same way their standalone schemes do (locking/rll.hpp,
// locking/antisat.hpp); see locking/compound.hpp for the key-bit layout of
// mixed genotypes.
//
// D-MUX baseline ("dmux_lock"): K sites sampled uniformly at random with
// random key bits — exactly how the paper seeds the GA population.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "locking/gene.hpp"
#include "locking/sites.hpp"
#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "util/rng.hpp"

namespace autolock::lock {

/// Result of locking a netlist.
struct LockedDesign {
  netlist::Netlist netlist;  // the locked netlist (original is untouched)
  netlist::Key key;          // correct key; bit t belongs to keyinput<t>
  /// MUX genes only: the applied LockSites in gene order (repairs written
  /// back) — the MUX-structural view attacks and tests consume.
  std::vector<LockSite> sites;
  /// Per MUX gene: the two inserted MUX node ids {M1, M2}.
  std::vector<std::pair<netlist::NodeId, netlist::NodeId>> mux_pairs;
  /// The full applied genotype (repairs written back), all schemes.
  Genotype genes;
  /// Per-gene decode record, aligned with `genes` (see AppliedGene).
  std::vector<AppliedGene> applied;
};

struct MuxLockOptions {
  /// When a genotype gene is structurally invalid (stale gene after
  /// crossover/mutation, or cross-gene clash), re-sample a fresh valid gene
  /// of the same kind instead of failing. The repaired gene is written back
  /// into the design's `genes` (and `sites` for MUX genes).
  bool repair_invalid = true;
};

/// Decodes a genotype into a locked netlist. Throws std::runtime_error if a
/// gene is invalid and repair is disabled (or repair cannot find a valid
/// replacement). The returned design always has exactly
/// sum(gene.key_bits()) key bits and passes netlist.validate().
LockedDesign apply_genotype(const netlist::Netlist& original,
                            const SiteContext& context, const Genotype& genes,
                            util::Rng& repair_rng,
                            const MuxLockOptions& options = {});

/// Buffer-reusing decode for evaluation loops: writes the locked design
/// into `out` (its netlist buffers, key, gene and MUX-pair vectors are
/// reused across calls) and runs every cycle check through `scratch`.
/// Produces a design identical to apply_genotype, but skips the full
/// structural validate() — the per-gene acyclicity checks plus the final
/// topological-order computation (which throws on a cycle) already cover
/// everything decode can get wrong, and the construction-side invariants
/// (names, arity) are enforced by the Netlist mutators themselves.
///
/// Keep the (out, scratch) pairing stable across calls: when consecutive
/// decodes reuse the same pair against the same original, the previous
/// rewiring is undone in place and the key-logic tail nodes are recycled
/// instead of re-copying the netlist — for every gene kind, as long as the
/// genotype's per-gene (kind, width, splice) profile matches the previous
/// decode's prefix (a structural mutation of `out` between decodes safely
/// falls back to the copy path). Cycle checks run against an incrementally
/// maintained dynamic topological order — see locking/decode_topo.hpp.
void apply_genotype_into(LockedDesign& out, const netlist::Netlist& original,
                         const SiteContext& context, const Genotype& genes,
                         util::Rng& repair_rng, ReachScratch& scratch,
                         const MuxLockOptions& options = {});

/// Pre-interns the decode-generated names ({keyinput<t>, keymux<t>a/b,
/// keyxor<t>} for t in [0, key_bits)) into `original`'s name table and
/// fills `scratch`'s cache, so even the very first apply_genotype_into
/// through a fresh workspace builds no name strings.
void warm_decode_names(const netlist::Netlist& original, std::size_t key_bits,
                       ReachScratch& scratch);

/// D-MUX-style random MUX locking with `key_bits` key bits.
LockedDesign dmux_lock(const netlist::Netlist& original, std::size_t key_bits,
                       std::uint64_t seed);

/// The production applicability check decode runs per candidate MUX site: a
/// site is applicable to the working netlist iff the edges it locks are
/// still present (no earlier gene consumed them) and the two cross edges do
/// not close a cycle given all previously inserted key logic — answered
/// against `topo`'s incrementally maintained ranks. Site ids must be in
/// range (decode guarantees this via SiteContext::structurally_valid).
bool applicable_to_working_ranks(DecodeTopo& topo, const LockSite& site);

namespace testing {

/// Test-only hook: the pre-incremental applicability check — from-scratch
/// backward-DFS cycle checks over the working netlist's per-gate fanin
/// vectors. Kept compiled so tests/test_sites.cpp can cross-check the
/// incremental rank-based path against it on random genotypes; decode never
/// calls it. Site ids must be in range for `working`.
bool applicable_to_working_dfs(const netlist::Netlist& working,
                               const LockSite& site, ReachScratch& scratch);

}  // namespace testing

/// Random MUX-only genotype of `key_bits` valid, pairwise edge-disjoint
/// sites (the paper's population initialisation: "lock the provided ON with
/// a key of size K ... repeated N times with random keys").
Genotype random_genotype(const SiteContext& context, std::size_t key_bits,
                         util::Rng& rng);

/// Random mixed genotype following `spec`: MUX sites first (same sampling
/// stream as the MUX-only overload), then RLL genes on distinct random
/// wires, then one Anti-SAT gene (its taps/keys/splice derived from a
/// freshly drawn gene seed). A pure-MUX spec draws the identical stream as
/// the MUX-only overload.
Genotype random_genotype(const SiteContext& context, const GenotypeSpec& spec,
                         util::Rng& rng);

}  // namespace autolock::lock
