// Locking verification and corruption metrics.
//
// Every locked design produced in this repo is expected to satisfy:
//   correct key  -> locked netlist ≡ original   (functional preservation)
//   wrong keys   -> observable output corruption (security requirement)
#pragma once

#include <cstdint>

#include "locking/mux_lock.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace autolock::lock {

enum class VerifyMode {
  kSimulation,  // random-vector screening (fast, probabilistic)
  kSat,         // full SAT miter proof
  kBoth,        // screening first, then proof
};

/// True iff the locked netlist under its correct key matches the original.
bool verify_unlocks(const LockedDesign& design,
                    const netlist::Netlist& original,
                    VerifyMode mode = VerifyMode::kSimulation,
                    std::size_t vectors = 2048, std::uint64_t seed = 7);

struct CorruptionReport {
  /// Mean output-bit error rate over sampled wrong keys (0.5 = maximally
  /// corrupting, 0 = wrong keys do nothing — a broken locking).
  double mean_error_rate = 0.0;
  double min_error_rate = 0.0;
  double max_error_rate = 0.0;
  /// Fraction of sampled wrong keys producing *no* observable corruption.
  double silent_wrong_keys = 0.0;
  std::size_t keys_sampled = 0;
};

/// Samples `key_trials` uniformly random wrong keys and measures output
/// corruption vs the original on `vectors` random input vectors. Keys are
/// probed in lane-transposed batches of up to 64 that share one vector set
/// (one multi-key sweep answers every key in the batch per vector); the key
/// and vector RNG streams are forked from `seed` independently, so the key
/// count never shifts the vector draws.
CorruptionReport measure_corruption(const LockedDesign& design,
                                    const netlist::Netlist& original,
                                    std::size_t key_trials = 32,
                                    std::size_t vectors = 512,
                                    std::uint64_t seed = 11);

}  // namespace autolock::lock
