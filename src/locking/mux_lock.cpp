#include "locking/mux_lock.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

namespace autolock::lock {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// The interned {keyinput<t>, keymux<t>a, keymux<t>b} symbols for key bit
/// `t`, from the scratch cache; interns only the first time a given bit
/// index is seen per design family. The suffixed names are formatted into a
/// stack buffer (NameTable::intern takes a string_view), so even a cold
/// cache builds no heap strings — pinned by the zero-intern regression in
/// test_mux_lock.cpp.
const std::array<netlist::NameId, 3>& key_bit_names(const Netlist& net,
                                                    std::size_t t,
                                                    ReachScratch& scratch) {
  netlist::NameTable& table = *net.names();
  if (scratch.key_name_table != net.names()) {
    scratch.key_name_table = net.names();
    scratch.key_names.clear();
  }
  while (scratch.key_names.size() <= t) {
    const unsigned long long bit = scratch.key_names.size();
    char buf[32];
    const auto format = [&](const char* pattern) {
      const int len = std::snprintf(buf, sizeof buf, pattern, bit);
      return table.intern({buf, static_cast<std::size_t>(len)});
    };
    const netlist::NameId key_input = format("keyinput%llu");
    const netlist::NameId mux_a = format("keymux%llua");
    const netlist::NameId mux_b = format("keymux%llub");
    scratch.key_names.push_back({key_input, mux_a, mux_b});
  }
  return scratch.key_names[t];
}

/// Shared decode loop. `out.netlist` must already hold a copy of the
/// original netlist; key/sites/mux_pairs must be empty. When
/// `recycled_tail` is nonzero, the netlist additionally already contains
/// the (undone) key-input/MUX tail nodes of a previous decode of the same
/// family: the first `recycled_tail` sites rewrite those nodes' fanins in
/// place instead of appending fresh nodes — same ids, same names, same
/// resulting netlist, no allocation.
void apply_sites(LockedDesign& design, const SiteContext& context,
                 const std::vector<LockSite>& sites, util::Rng& repair_rng,
                 ReachScratch& scratch, const MuxLockOptions& options,
                 std::size_t recycled_tail = 0) {
  const NodeId first_tail = static_cast<NodeId>(context.original().size());
  // Decode-local dynamic topological order over the working netlist: seeded
  // from the original's longest-path levels, relabelled incrementally per
  // accepted site. Every applicability query below is an O(1) rank
  // comparison in the common case, with a rank-window-bounded DFS otherwise
  // — never the from-scratch whole-graph DFS the pre-incremental decode
  // ran.
  DecodeTopo& topo = scratch.topo;
  topo.reset(context.fanin_csr(), context.seed_ranks(),
             context.decode_token());
  for (std::size_t t = 0; t < sites.size(); ++t) {
    LockSite site = sites[t];
    const bool ok = context.structurally_valid(site, scratch) &&
                    SiteContext::edges_available(site, design.sites) &&
                    applicable_to_working_ranks(topo, site);
    if (!ok) {
      if (!options.repair_invalid) {
        throw std::runtime_error("apply_genotype: invalid site at key bit " +
                                 std::to_string(t));
      }
      bool repaired = false;
      for (int attempt = 0; attempt < 64 && !repaired; ++attempt) {
        LockSite candidate;
        if (!context.sample_site(repair_rng, design.sites, candidate,
                                 scratch)) {
          break;
        }
        if (applicable_to_working_ranks(topo, candidate)) {
          site = candidate;
          repaired = true;
        }
      }
      if (!repaired) {
        throw std::runtime_error(
            "apply_genotype: could not repair invalid site at key bit " +
            std::to_string(t) + " (circuit too small or saturated)");
      }
    }

    // Wire so that select == site.key_bit restores the original paths.
    const NodeId a0 = site.key_bit ? site.f_j : site.f_i;
    const NodeId a1 = site.key_bit ? site.f_i : site.f_j;
    NodeId sel, m1, m2;
    if (t < recycled_tail) {
      // Recycle the previous decode's nodes for this bit (ids, names, types
      // and is_key flags are decode-invariant within a family).
      sel = first_tail + static_cast<NodeId>(3 * t);
      m1 = sel + 1;
      m2 = sel + 2;
      const NodeId m1_fanins[3] = {sel, a0, a1};
      const NodeId m2_fanins[3] = {sel, a1, a0};
      design.netlist.set_gate_fanins(m1, m1_fanins);
      design.netlist.set_gate_fanins(m2, m2_fanins);
    } else {
      const auto& names = key_bit_names(design.netlist, t, scratch);
      sel = design.netlist.add_input(names[0], /*is_key=*/true);
      m1 = design.netlist.add_gate(GateType::kMux, {sel, a0, a1}, names[1]);
      m2 = design.netlist.add_gate(GateType::kMux, {sel, a1, a0}, names[2]);
    }
    if (design.netlist.replace_fanin(site.g_i, site.f_i, m1) == 0 ||
        design.netlist.replace_fanin(site.g_j, site.f_j, m2) == 0) {
      throw std::logic_error("apply_genotype: edge vanished during rewiring");
    }
    topo.insert_mux_pair(site.f_i, site.f_j, site.g_i, site.g_j, a0, a1, sel,
                         m1, m2);
    design.key.push_back(site.key_bit);
    design.sites.push_back(site);
    design.mux_pairs.emplace_back(m1, m2);
  }
}

}  // namespace

namespace testing {

bool applicable_to_working_dfs(const Netlist& working, const LockSite& site,
                               ReachScratch& scratch) {
  // True iff `target` is in the transitive fanin of `from` — the
  // pre-incremental check: a from-scratch backward DFS over the working
  // netlist's per-gate fanin vectors, unbounded by any rank structure.
  const auto depends_on = [&](NodeId from, NodeId target) {
    if (from == target) return true;
    scratch.visited.begin_epoch(working.size());
    scratch.stack.clear();
    scratch.stack.push_back(from);
    scratch.visited.mark(from);
    while (!scratch.stack.empty()) {
      const NodeId v = scratch.stack.back();
      scratch.stack.pop_back();
      for (NodeId fanin : working.node(v).fanins) {
        if (fanin == target) return true;
        if (scratch.visited.try_mark(fanin)) scratch.stack.push_back(fanin);
      }
    }
    return false;
  };
  const auto has_fanin = [&](NodeId gate, NodeId fanin) {
    for (NodeId f : working.node(gate).fanins) {
      if (f == fanin) return true;
    }
    return false;
  };
  if (!has_fanin(site.g_i, site.f_i)) return false;
  if (!has_fanin(site.g_j, site.f_j)) return false;
  // Cycle check on the working graph: new edges f_j -> g_i and f_i -> g_j.
  if (depends_on(site.f_j, site.g_i)) return false;
  if (depends_on(site.f_i, site.g_j)) return false;
  return true;
}

}  // namespace testing

bool applicable_to_working_ranks(DecodeTopo& topo, const LockSite& site) {
  if (!topo.has_fanin(site.g_i, site.f_i)) return false;
  if (!topo.has_fanin(site.g_j, site.f_j)) return false;
  // Cycle check on the working graph: new edges f_j -> g_i and f_i -> g_j.
  // ensure_order doubles as the pre-relabel for a subsequent
  // insert_mux_pair — an accepted site's MUXes slot straight in between
  // the already-ordered drivers and gates.
  if (!topo.ensure_order(site.f_j, site.g_i)) return false;
  if (!topo.ensure_order(site.f_i, site.g_j)) return false;
  return true;
}

LockedDesign apply_genotype(const Netlist& original,
                            const SiteContext& context,
                            std::vector<LockSite> sites, util::Rng& repair_rng,
                            const MuxLockOptions& options) {
  LockedDesign design{original, {}, {}, {}};
  design.netlist.set_name(original.name() + "_muxlocked");
  ReachScratch scratch;
  apply_sites(design, context, sites, repair_rng, scratch, options);
  design.netlist.validate();
  return design;
}

void apply_genotype_into(LockedDesign& out, const Netlist& original,
                         const SiteContext& context,
                         const std::vector<LockSite>& sites,
                         util::Rng& repair_rng, ReachScratch& scratch,
                         const MuxLockOptions& options) {
  // Fast path: when this (out, original) pair is the one the previous
  // decode through this scratch produced — and the caller has not shrunk
  // the key or mutated the design since — the previous rewiring is undone
  // in place and the key-input/MUX tail nodes are recycled, skipping the
  // netlist copy and all node re-insertion. Falls back to the full copy on
  // any mismatch; both paths produce identical designs.
  const std::size_t prev = out.sites.size();
  // The structural-version comparison makes the netlist side watertight:
  // ANY structural mutation of the netlist since the previous decode (by
  // the caller, or by a decode through a different scratch) bumps the
  // version and drops this call to the copy path.
  bool recycle =
      scratch.last_design == &out && scratch.last_original == &original &&
      scratch.last_design_version == out.netlist.structural_version() &&
      out.mux_pairs.size() == prev && sites.size() >= prev &&
      out.netlist.size() == original.size() + 3 * prev &&
      out.netlist.names() == original.names();
  // The version cannot see edits to the out.sites/out.mux_pairs metadata
  // vectors themselves, so additionally require every recorded splice to
  // still be wired exactly where its site says — otherwise the undo below
  // would have nothing to revert. Any mismatch falls back to the copy.
  for (std::size_t t = 0; recycle && t < prev; ++t) {
    const auto wired = [&](NodeId gate, NodeId mux) {
      if (gate >= out.netlist.size()) return false;
      for (NodeId f : out.netlist.node(gate).fanins) {
        if (f == mux) return true;
      }
      return false;
    };
    recycle = wired(out.sites[t].g_i, out.mux_pairs[t].first) &&
              wired(out.sites[t].g_j, out.mux_pairs[t].second);
  }
  scratch.last_design = nullptr;
  if (recycle) {
    // Revert the previous rewiring: each MUX occupies exactly the fanin
    // slots of the driver it replaced, and feeds nothing else.
    for (std::size_t t = prev; t-- > 0;) {
      const LockSite& s = out.sites[t];
      if (out.netlist.replace_fanin(s.g_i, out.mux_pairs[t].first, s.f_i) ==
              0 ||
          out.netlist.replace_fanin(s.g_j, out.mux_pairs[t].second, s.f_j) ==
              0) {
        throw std::logic_error("apply_genotype_into: undo lost an edge");
      }
    }
  } else {
    // Copy-assignment reuses the destination's node/name storage where the
    // allocator permits; the first decode into a workspace pays the full
    // copy.
    out.netlist = original;
  }
  // Rename only when the name actually differs (the recycle path arrives
  // already named) — the comparison allocates nothing.
  {
    constexpr std::string_view kSuffix = "_muxlocked";
    const std::string& base = original.name();
    const std::string& current = out.netlist.name();
    if (current.size() != base.size() + kSuffix.size() ||
        current.compare(0, base.size(), base) != 0 ||
        current.compare(base.size(), kSuffix.size(), kSuffix) != 0) {
      out.netlist.set_name(base + std::string(kSuffix));
    }
  }
  out.key.clear();
  out.sites.clear();
  out.mux_pairs.clear();
  out.sites.reserve(sites.size());
  apply_sites(out, context, sites, repair_rng, scratch, options,
              recycle ? prev : 0);
  // Prime the traversal cache every downstream attack and simulator
  // construction consumes with the order derived from the decode's dynamic
  // ranks — an O(V) merge of the context's seed order with the decode's
  // touched nodes, never the O(V + E) Kahn re-sort plus CSR fanout rebuild
  // the decode previously paid per genotype. Acyclicity is already proven
  // site-by-site by the dynamic order; debug builds re-verify the primed
  // order inside prime_topological_order.
  scratch.topo.order_into(context.seed_order(), context.seed_order_ranks(),
                          context.seed_pos(), scratch.topo_scratch.order);
  out.netlist.prime_topological_order(scratch.topo_scratch.order);
  scratch.last_design = &out;
  scratch.last_original = &original;
  scratch.last_design_version = out.netlist.structural_version();
}

void warm_decode_names(const Netlist& original, std::size_t key_bits,
                       ReachScratch& scratch) {
  if (key_bits != 0) {
    (void)key_bit_names(original, key_bits - 1, scratch);
  }
}

std::vector<LockSite> random_genotype(const SiteContext& context,
                                      std::size_t key_bits, util::Rng& rng) {
  std::vector<LockSite> sites;
  sites.reserve(key_bits);
  ReachScratch scratch;  // one visited set for all key bits, not one per bit
  for (std::size_t t = 0; t < key_bits; ++t) {
    LockSite site;
    if (!context.sample_site(rng, sites, site, scratch)) {
      throw std::runtime_error(
          "random_genotype: cannot place " + std::to_string(key_bits) +
          " MUX pairs in circuit '" + context.original().name() + "'");
    }
    sites.push_back(site);
  }
  return sites;
}

LockedDesign dmux_lock(const Netlist& original, std::size_t key_bits,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  const SiteContext context(original);
  auto sites = random_genotype(context, key_bits, rng);
  auto design = apply_genotype(original, context, std::move(sites), rng);
  design.netlist.set_name(original.name() + "_dmux");
  return design;
}

}  // namespace autolock::lock
