#include "locking/mux_lock.hpp"

#include <utility>

namespace autolock::lock {

using netlist::Netlist;
using netlist::NodeId;

// The genotype decode itself (apply_genotype / apply_genotype_into /
// random_genotype / warm_decode_names) lives in locking/compound.cpp — it
// handles every gene kind; this file keeps the MUX-specific pieces.

namespace testing {

bool applicable_to_working_dfs(const Netlist& working, const LockSite& site,
                               ReachScratch& scratch) {
  // True iff `target` is in the transitive fanin of `from` — the
  // pre-incremental check: a from-scratch backward DFS over the working
  // netlist's per-gate fanin vectors, unbounded by any rank structure.
  const auto depends_on = [&](NodeId from, NodeId target) {
    if (from == target) return true;
    scratch.visited.begin_epoch(working.size());
    scratch.stack.clear();
    scratch.stack.push_back(from);
    scratch.visited.mark(from);
    while (!scratch.stack.empty()) {
      const NodeId v = scratch.stack.back();
      scratch.stack.pop_back();
      for (NodeId fanin : working.node(v).fanins) {
        if (fanin == target) return true;
        if (scratch.visited.try_mark(fanin)) scratch.stack.push_back(fanin);
      }
    }
    return false;
  };
  const auto has_fanin = [&](NodeId gate, NodeId fanin) {
    for (NodeId f : working.node(gate).fanins) {
      if (f == fanin) return true;
    }
    return false;
  };
  if (!has_fanin(site.g_i, site.f_i)) return false;
  if (!has_fanin(site.g_j, site.f_j)) return false;
  // Cycle check on the working graph: new edges f_j -> g_i and f_i -> g_j.
  if (depends_on(site.f_j, site.g_i)) return false;
  if (depends_on(site.f_i, site.g_j)) return false;
  return true;
}

}  // namespace testing

bool applicable_to_working_ranks(DecodeTopo& topo, const LockSite& site) {
  if (!topo.has_fanin(site.g_i, site.f_i)) return false;
  if (!topo.has_fanin(site.g_j, site.f_j)) return false;
  // Cycle check on the working graph: new edges f_j -> g_i and f_i -> g_j.
  // ensure_order doubles as the pre-relabel for a subsequent
  // insert_mux_pair — an accepted site's MUXes slot straight in between
  // the already-ordered drivers and gates.
  if (!topo.ensure_order(site.f_j, site.g_i)) return false;
  if (!topo.ensure_order(site.f_i, site.g_j)) return false;
  return true;
}

LockedDesign dmux_lock(const Netlist& original, std::size_t key_bits,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  const SiteContext context(original);
  auto genes = random_genotype(context, key_bits, rng);
  auto design = apply_genotype(original, context, std::move(genes), rng);
  design.netlist.set_name(original.name() + "_dmux");
  return design;
}

}  // namespace autolock::lock
