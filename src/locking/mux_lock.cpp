#include "locking/mux_lock.hpp"

#include <stdexcept>
#include <string>

namespace autolock::lock {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// True iff `target` is in the transitive fanin of `from` in `working`
/// (i.e. `from` functionally depends on `target`). The working netlist
/// mutates as sites are applied (cross edges connect arbitrary topological
/// ranks), so unlike SiteContext::reaches this check cannot be bounded by
/// the original's topo ranks — but the visited set is epoch-stamped, so it
/// allocates nothing once the scratch is warm.
bool depends_on(const Netlist& working, NodeId from, NodeId target,
                ReachScratch& scratch) {
  if (from == target) return true;
  scratch.visited.begin_epoch(working.size());
  scratch.stack.clear();
  scratch.stack.push_back(from);
  scratch.visited.mark(from);
  while (!scratch.stack.empty()) {
    const NodeId v = scratch.stack.back();
    scratch.stack.pop_back();
    for (NodeId fanin : working.node(v).fanins) {
      if (fanin == target) return true;
      if (scratch.visited.try_mark(fanin)) scratch.stack.push_back(fanin);
    }
  }
  return false;
}

/// A site is applicable to the *working* netlist iff the edges it locks are
/// still present (no earlier site consumed them) and the two cross edges do
/// not close a cycle given all previously inserted MUX pairs.
bool applicable_to_working(const Netlist& working, const LockSite& site,
                           ReachScratch& scratch) {
  const auto has_fanin = [&](NodeId gate, NodeId fanin) {
    for (NodeId f : working.node(gate).fanins) {
      if (f == fanin) return true;
    }
    return false;
  };
  if (!has_fanin(site.g_i, site.f_i)) return false;
  if (!has_fanin(site.g_j, site.f_j)) return false;
  // Cycle check on the working graph: new edges f_j -> g_i and f_i -> g_j.
  if (depends_on(working, site.f_j, site.g_i, scratch)) return false;
  if (depends_on(working, site.f_i, site.g_j, scratch)) return false;
  return true;
}

/// The interned {keyinput<t>, keymux<t>a, keymux<t>b} symbols for key bit
/// `t`, from the scratch cache; interns (allocates) only the first time a
/// given bit index is seen per design family.
const std::array<netlist::NameId, 3>& key_bit_names(const Netlist& net,
                                                    std::size_t t,
                                                    ReachScratch& scratch) {
  netlist::NameTable& table = *net.names();
  if (scratch.key_name_table != net.names()) {
    scratch.key_name_table = net.names();
    scratch.key_names.clear();
  }
  while (scratch.key_names.size() <= t) {
    const std::string suffix = std::to_string(scratch.key_names.size());
    scratch.key_names.push_back({table.intern("keyinput" + suffix),
                                 table.intern("keymux" + suffix + "a"),
                                 table.intern("keymux" + suffix + "b")});
  }
  return scratch.key_names[t];
}

/// Shared decode loop. `out.netlist` must already hold a copy of the
/// original netlist; key/sites/mux_pairs must be empty.
void apply_sites(LockedDesign& design, const SiteContext& context,
                 const std::vector<LockSite>& sites, util::Rng& repair_rng,
                 ReachScratch& scratch, const MuxLockOptions& options) {
  for (std::size_t t = 0; t < sites.size(); ++t) {
    LockSite site = sites[t];
    const bool ok = context.structurally_valid(site, scratch) &&
                    SiteContext::edges_available(site, design.sites) &&
                    applicable_to_working(design.netlist, site, scratch);
    if (!ok) {
      if (!options.repair_invalid) {
        throw std::runtime_error("apply_genotype: invalid site at key bit " +
                                 std::to_string(t));
      }
      bool repaired = false;
      for (int attempt = 0; attempt < 64 && !repaired; ++attempt) {
        LockSite candidate;
        if (!context.sample_site(repair_rng, design.sites, candidate,
                                 scratch)) {
          break;
        }
        if (applicable_to_working(design.netlist, candidate, scratch)) {
          site = candidate;
          repaired = true;
        }
      }
      if (!repaired) {
        throw std::runtime_error(
            "apply_genotype: could not repair invalid site at key bit " +
            std::to_string(t) + " (circuit too small or saturated)");
      }
    }

    const auto& names = key_bit_names(design.netlist, t, scratch);
    const NodeId sel = design.netlist.add_input(names[0], /*is_key=*/true);
    // Wire so that select == site.key_bit restores the original paths.
    const NodeId a0 = site.key_bit ? site.f_j : site.f_i;
    const NodeId a1 = site.key_bit ? site.f_i : site.f_j;
    const NodeId m1 =
        design.netlist.add_gate(GateType::kMux, {sel, a0, a1}, names[1]);
    const NodeId m2 =
        design.netlist.add_gate(GateType::kMux, {sel, a1, a0}, names[2]);
    if (design.netlist.replace_fanin(site.g_i, site.f_i, m1) == 0 ||
        design.netlist.replace_fanin(site.g_j, site.f_j, m2) == 0) {
      throw std::logic_error("apply_genotype: edge vanished during rewiring");
    }
    design.key.push_back(site.key_bit);
    design.sites.push_back(site);
    design.mux_pairs.emplace_back(m1, m2);
  }
}

}  // namespace

LockedDesign apply_genotype(const Netlist& original,
                            const SiteContext& context,
                            std::vector<LockSite> sites, util::Rng& repair_rng,
                            const MuxLockOptions& options) {
  LockedDesign design{original, {}, {}, {}};
  design.netlist.set_name(original.name() + "_muxlocked");
  ReachScratch scratch;
  apply_sites(design, context, sites, repair_rng, scratch, options);
  design.netlist.validate();
  return design;
}

void apply_genotype_into(LockedDesign& out, const Netlist& original,
                         const SiteContext& context,
                         const std::vector<LockSite>& sites,
                         util::Rng& repair_rng, ReachScratch& scratch,
                         const MuxLockOptions& options) {
  // Copy-assignment reuses the destination's node/name storage where the
  // allocator permits; the first decode into a workspace pays the full copy,
  // later ones mostly memcpy.
  out.netlist = original;
  out.netlist.set_name(original.name() + "_muxlocked");
  out.key.clear();
  out.sites.clear();
  out.mux_pairs.clear();
  out.sites.reserve(sites.size());
  apply_sites(out, context, sites, repair_rng, scratch, options);
  // Cheap acyclicity guarantee in place of the full validate(): computing
  // the topological order throws on a cycle and primes the traversal cache
  // every downstream attack and simulator construction consumes anyway.
  out.netlist.topological_order();
}

void warm_decode_names(const Netlist& original, std::size_t key_bits,
                       ReachScratch& scratch) {
  if (key_bits != 0) {
    (void)key_bit_names(original, key_bits - 1, scratch);
  }
}

std::vector<LockSite> random_genotype(const SiteContext& context,
                                      std::size_t key_bits, util::Rng& rng) {
  std::vector<LockSite> sites;
  sites.reserve(key_bits);
  for (std::size_t t = 0; t < key_bits; ++t) {
    LockSite site;
    if (!context.sample_site(rng, sites, site)) {
      throw std::runtime_error(
          "random_genotype: cannot place " + std::to_string(key_bits) +
          " MUX pairs in circuit '" + context.original().name() + "'");
    }
    sites.push_back(site);
  }
  return sites;
}

LockedDesign dmux_lock(const Netlist& original, std::size_t key_bits,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  const SiteContext context(original);
  auto sites = random_genotype(context, key_bits, rng);
  auto design = apply_genotype(original, context, std::move(sites), rng);
  design.netlist.set_name(original.name() + "_dmux");
  return design;
}

}  // namespace autolock::lock
