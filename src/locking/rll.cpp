#include "locking/rll.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace autolock::lock {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

LockedDesign rll_lock(const Netlist& original, std::size_t key_bits,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  LockedDesign design{original, {}, {}, {}};
  design.netlist.set_name(original.name() + "_rll");

  // Collect all lockable wires (driver -> gate fanin slot). Constants are
  // excluded for the same reason as in MUX locking.
  std::vector<std::pair<NodeId, NodeId>> wires;  // (driver, sink gate)
  for (NodeId v = 0; v < original.size(); ++v) {
    for (NodeId fanin : original.node(v).fanins) {
      const auto type = original.node(fanin).type;
      if (type == GateType::kConst0 || type == GateType::kConst1) continue;
      wires.emplace_back(fanin, v);
    }
  }
  // A gate may list the same driver twice; replace_fanin rewires every
  // occurrence at once, so such wires must appear only once in the pool.
  std::sort(wires.begin(), wires.end());
  wires.erase(std::unique(wires.begin(), wires.end()), wires.end());
  if (wires.size() < key_bits) {
    throw std::runtime_error("rll_lock: circuit has only " +
                             std::to_string(wires.size()) +
                             " lockable wires, need " +
                             std::to_string(key_bits));
  }
  const auto chosen = rng.sample_indices(wires.size(), key_bits);

  for (std::size_t t = 0; t < key_bits; ++t) {
    const auto [driver, sink] = wires[chosen[t]];
    const bool key_bit = rng.next_bool();
    const NodeId key_in = design.netlist.add_input(
        "keyinput" + std::to_string(t), /*is_key=*/true);
    const NodeId key_gate = design.netlist.add_gate(
        key_bit ? GateType::kXnor : GateType::kXor, {key_in, driver},
        "keyxor" + std::to_string(t));
    if (design.netlist.replace_fanin(sink, driver, key_gate) == 0) {
      throw std::logic_error("rll_lock: wire vanished during rewiring");
    }
    design.key.push_back(key_bit);
  }

  design.netlist.validate();
  return design;
}

}  // namespace autolock::lock
