#include "locking/rll.hpp"

#include <stdexcept>
#include <string>

#include "locking/compound.hpp"
#include "util/rng.hpp"

namespace autolock::lock {

using netlist::Netlist;

LockedDesign rll_lock(const Netlist& original, std::size_t key_bits,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  const SiteContext context(original);
  // The context's wire pool is exactly the pool this scheme historically
  // built inline: every fanin edge, constants excluded, deduplicated.
  const auto& wires = context.rll_wires();
  if (wires.size() < key_bits) {
    throw std::runtime_error("rll_lock: circuit has only " +
                             std::to_string(wires.size()) +
                             " lockable wires, need " +
                             std::to_string(key_bits));
  }
  const auto chosen = rng.sample_indices(wires.size(), key_bits);
  Genotype genes;
  genes.reserve(key_bits);
  for (std::size_t t = 0; t < key_bits; ++t) {
    genes.push_back(Gene::rll(wires[chosen[t]].first, wires[chosen[t]].second,
                              rng.next_bool()));
  }
  auto design = apply_genotype(original, context, genes, rng);
  design.netlist.set_name(original.name() + "_rll");
  return design;
}

}  // namespace autolock::lock
