#include "locking/verify.hpp"

#include "netlist/simulator.hpp"
#include "sat/cnf.hpp"

namespace autolock::lock {

using netlist::Key;
using netlist::Simulator;

bool verify_unlocks(const LockedDesign& design,
                    const netlist::Netlist& original, VerifyMode mode,
                    std::size_t vectors, std::uint64_t seed) {
  if (mode == VerifyMode::kSimulation || mode == VerifyMode::kBoth) {
    util::Rng rng(seed);
    const Simulator locked_sim(design.netlist);
    const Simulator original_sim(original);
    if (!Simulator::equivalent_on_random_vectors(locked_sim, design.key,
                                                 original_sim, Key{}, vectors,
                                                 rng)) {
      return false;
    }
    if (mode == VerifyMode::kSimulation) return true;
  }
  return sat::check_unlocks(design.netlist, design.key, original);
}

CorruptionReport measure_corruption(const LockedDesign& design,
                                    const netlist::Netlist& original,
                                    std::size_t key_trials,
                                    std::size_t vectors, std::uint64_t seed) {
  util::Rng rng(seed);
  // Draw-order contract: the key stream and the vector stream are forked
  // independently (keys first), so rejection redraws while sampling wrong
  // keys never shift the vector draws — and a ragged (< 64 key) final batch
  // consumes exactly the same vector stream as a full one.
  util::Rng key_rng = rng.fork();
  util::Rng vec_rng = rng.fork();
  const Simulator locked_sim(design.netlist);
  const Simulator original_sim(original);

  CorruptionReport report;
  if (design.key.empty() || key_trials == 0) return report;

  netlist::KeyBatch batch;
  netlist::SimScratch scratch;
  std::vector<std::uint64_t> in_words, ref_words;
  std::vector<double> errors;
  Key wrong = design.key;
  double sum = 0.0;
  bool first = true;
  std::size_t remaining = key_trials;
  while (remaining > 0) {
    // Up to 64 wrong keys share one batch of `vectors` random vectors: one
    // lane-transposed multi-key sweep per vector answers every key at once.
    const std::size_t take = remaining < 64 ? remaining : 64;
    batch.reset(design.key.size());
    for (std::size_t t = 0; t < take; ++t) {
      // Draw a uniformly random key != the correct key (flip >= 1 bit).
      bool differs = false;
      while (!differs) {
        for (std::size_t b = 0; b < wrong.size(); ++b) {
          wrong[b] = key_rng.next_bool();
          differs = differs || (wrong[b] != design.key[b]);
        }
      }
      batch.push(wrong);
    }
    Simulator::multi_key_error_rate(locked_sim, batch, original_sim, Key{},
                                    vectors, vec_rng, scratch, in_words,
                                    ref_words, errors);
    for (const double err : errors) {
      sum += err;
      if (first) {
        report.min_error_rate = report.max_error_rate = err;
        first = false;
      } else {
        report.min_error_rate = std::min(report.min_error_rate, err);
        report.max_error_rate = std::max(report.max_error_rate, err);
      }
      if (err == 0.0) report.silent_wrong_keys += 1.0;
    }
    remaining -= take;
  }
  report.keys_sampled = key_trials;
  report.mean_error_rate = sum / static_cast<double>(key_trials);
  report.silent_wrong_keys /= static_cast<double>(key_trials);
  return report;
}

}  // namespace autolock::lock
