#include "locking/verify.hpp"

#include "netlist/simulator.hpp"
#include "sat/cnf.hpp"

namespace autolock::lock {

using netlist::Key;
using netlist::Simulator;

bool verify_unlocks(const LockedDesign& design,
                    const netlist::Netlist& original, VerifyMode mode,
                    std::size_t vectors, std::uint64_t seed) {
  if (mode == VerifyMode::kSimulation || mode == VerifyMode::kBoth) {
    util::Rng rng(seed);
    const Simulator locked_sim(design.netlist);
    const Simulator original_sim(original);
    if (!Simulator::equivalent_on_random_vectors(locked_sim, design.key,
                                                 original_sim, Key{}, vectors,
                                                 rng)) {
      return false;
    }
    if (mode == VerifyMode::kSimulation) return true;
  }
  return sat::check_unlocks(design.netlist, design.key, original);
}

CorruptionReport measure_corruption(const LockedDesign& design,
                                    const netlist::Netlist& original,
                                    std::size_t key_trials,
                                    std::size_t vectors, std::uint64_t seed) {
  util::Rng rng(seed);
  const Simulator locked_sim(design.netlist);
  const Simulator original_sim(original);

  CorruptionReport report;
  if (design.key.empty() || key_trials == 0) return report;

  double sum = 0.0;
  for (std::size_t trial = 0; trial < key_trials; ++trial) {
    // Draw a uniformly random key != the correct key (flip >= 1 bit).
    Key wrong = design.key;
    bool differs = false;
    while (!differs) {
      for (std::size_t b = 0; b < wrong.size(); ++b) {
        wrong[b] = rng.next_bool();
        differs = differs || (wrong[b] != design.key[b]);
      }
    }
    const double err = Simulator::output_error_rate(
        locked_sim, wrong, original_sim, Key{}, vectors, rng);
    sum += err;
    if (trial == 0) {
      report.min_error_rate = report.max_error_rate = err;
    } else {
      report.min_error_rate = std::min(report.min_error_rate, err);
      report.max_error_rate = std::max(report.max_error_rate, err);
    }
    if (err == 0.0) {
      report.silent_wrong_keys += 1.0;
    }
  }
  report.keys_sampled = key_trials;
  report.mean_error_rate = sum / static_cast<double>(key_trials);
  report.silent_wrong_keys /= static_cast<double>(key_trials);
  return report;
}

}  // namespace autolock::lock
