// Deterministic pseudo-random number generation for all stochastic components.
//
// Every stochastic object in the library (circuit generator, locking schemes,
// GA operators, attack training) takes an explicit 64-bit seed and derives its
// randomness from an Rng instance, so every experiment is reproducible
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace autolock::util {

/// SplitMix64: used to expand a single seed into a full xoshiro state.
/// Reference: Sebastiano Vigna, public-domain reference implementation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG with 256-bit state.
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xA07010CCULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method for unbiased results. Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
    // Lemire's method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

  /// Standard normal via Box–Muller (one value per call; simple, adequate).
  double next_gaussian() noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// k distinct indices sampled uniformly from [0, n) (order randomized).
  /// Precondition: k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Pick one element of a non-empty span uniformly at random.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[next_below(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Derive an independent child generator (for giving subcomponents their
  /// own deterministic stream).
  Rng fork() noexcept { return Rng((*this)() ^ 0x5851F42D4C957F2DULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace autolock::util
