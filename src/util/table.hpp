// ASCII table and CSV emission for the benchmark harness. Every bench binary
// prints the rows a paper table/figure would contain, through this module, so
// output formatting is uniform.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace autolock::util {

/// Column-aligned ASCII table with a header row, plus CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }

  /// Renders with a separator under the header, columns padded to width.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 3);
/// Formats a fraction as a percentage string, e.g. 0.3125 -> "31.2%".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace autolock::util
