// Epoch-stamped visited set: an O(1)-reset replacement for the per-call
// `std::vector<bool> visited(n, false)` pattern in graph traversals.
//
// Instead of clearing (or reallocating) a flag array before every traversal,
// each slot stores the epoch in which it was last marked; bumping the epoch
// invalidates every mark at once. The array is only touched (zeroed) when it
// grows or when the 32-bit epoch counter wraps — both rare. Hot paths that
// run thousands of small DFS/BFS passes per evaluation (cycle checks during
// genotype decode, hard-negative sampling in the link-prediction attacks,
// subgraph extraction) keep one EpochFlags per worker in their scratch
// state and call begin_epoch() per traversal.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace autolock::util {

class EpochFlags {
 public:
  /// Starts a fresh traversal over a domain of `n` slots: previous marks
  /// become invisible. O(1) except on growth or epoch wrap-around.
  void begin_epoch(std::size_t n) {
    if (stamps_.size() < n) stamps_.resize(n, 0);
    if (++epoch_ == 0) {  // wrapped: every stale stamp could collide
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Grows the domain to at least `n` slots without invalidating current
  /// marks (new slots come up unmarked). For traversals whose domain grows
  /// mid-epoch — e.g. decode dirty-tracking over a netlist that appends
  /// nodes while the epoch is live.
  void ensure(std::size_t n) {
    if (stamps_.size() < n) stamps_.resize(n, 0);
  }

  bool marked(std::size_t i) const noexcept { return stamps_[i] == epoch_; }

  void mark(std::size_t i) noexcept { stamps_[i] = epoch_; }

  /// Marks slot i; returns true iff it was not already marked (test-and-set).
  bool try_mark(std::size_t i) noexcept {
    if (stamps_[i] == epoch_) return false;
    stamps_[i] = epoch_;
    return true;
  }

  std::size_t capacity() const noexcept { return stamps_.size(); }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 0;
};

}  // namespace autolock::util
