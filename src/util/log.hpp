// Minimal leveled logger. The library itself stays quiet at Info by default;
// the GA and attacks log per-generation/per-epoch progress at Debug so long
// runs can be observed without drowning bench output.
#pragma once

#include <sstream>
#include <string>

namespace autolock::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Not synchronized —
/// set once at startup before spawning worker threads.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes "[LEVEL] message" to stderr if level passes the threshold.
/// Thread-safe (single formatted write).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_message(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace autolock::util
