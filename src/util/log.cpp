#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace autolock::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace autolock::util
