#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace autolock::util {

double Rng::next_gaussian() noexcept {
  // Box–Muller transform; discard the second variate for simplicity.
  double u1 = next_double();
  // Guard against log(0).
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  // For small k relative to n, rejection sampling would be fine, but a
  // partial Fisher–Yates over an index vector is simple and O(n).
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + next_below(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace autolock::util
