#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace autolock::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_sharded(
      n, [&fn](std::size_t, std::size_t index) { fn(index); }, grain);
}

void ThreadPool::parallel_for_sharded(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  // Shared control block owned by every enqueued task copy. parallel_for
  // can return while unstarted task copies are still queued (when one
  // worker drains all indices); those stragglers must find valid state, see
  // next >= n, and exit without ever touching `fn` — which is only
  // guaranteed alive until the call returns.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::condition_variable done_cv;
    std::mutex done_mutex;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->grain = grain;
  state->fn = &fn;

  // One task per worker (not per index); each task claims `grain` indices
  // per fetch from the shared counter so uneven per-index costs (typical
  // for GA individuals) balance out without per-index queue traffic.
  const std::size_t shards = std::min((n + grain - 1) / grain,
                                      std::max<std::size_t>(workers_.size(), 1));
  const auto body = [state](std::size_t shard) {
    for (;;) {
      const std::size_t begin = state->next.fetch_add(state->grain);
      if (begin >= state->n) break;
      const std::size_t end = std::min(begin + state->grain, state->n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*state->fn)(shard, i);
        } catch (...) {
          const std::scoped_lock lock(state->error_mutex);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
        }
      }
      if (state->done.fetch_add(end - begin) + (end - begin) == state->n) {
        const std::scoped_lock lock(state->done_mutex);
        state->done_cv.notify_all();
      }
    }
  };

  {
    const std::scoped_lock lock(mutex_);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks_.emplace([body, s] { body(s); });
    }
  }
  cv_.notify_all();

  std::unique_lock lock(state->done_mutex);
  state->done_cv.wait(lock, [&] { return state->done.load() >= n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace autolock::util
