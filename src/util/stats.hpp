// Small statistics toolkit used by the benchmark harness and the GA's
// per-generation reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autolock::util {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_half_width() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
/// Median (averages the middle pair for even counts). Copies its input.
double median(std::vector<double> xs);
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

}  // namespace autolock::util
