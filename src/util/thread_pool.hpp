// Fixed-size thread pool with a blocking parallel_for, used to evaluate GA
// population fitness concurrently (each individual's MuxLink attack run is
// independent).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace autolock::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for all i in [0, n), distributing across workers, and blocks
  /// until every index has completed. Exceptions thrown by fn propagate
  /// (the first one captured is rethrown after all work finishes).
  ///
  /// `grain` is the number of consecutive indices a worker claims per fetch
  /// from the shared counter: 1 gives the finest load balancing (GA
  /// individuals with very uneven attack costs), larger grains amortize the
  /// atomic traffic for cheap uniform bodies.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Like parallel_for, but the callback also receives the id of the task
  /// shard executing it (in [0, min(n, size()))). One shard runs strictly
  /// sequentially, so shard-indexed scratch state (e.g. one EvalWorkspace
  /// per shard) needs no synchronization. Index-to-shard assignment is
  /// timing-dependent; callers must not let it influence results.
  void parallel_for_sharded(
      std::size_t n,
      const std::function<void(std::size_t shard, std::size_t index)>& fn,
      std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace autolock::util
