// Fixed-size thread pool with a blocking parallel_for, used to evaluate GA
// population fitness concurrently (each individual's MuxLink attack run is
// independent).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace autolock::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for all i in [0, n), distributing across workers, and blocks
  /// until every index has completed. Exceptions thrown by fn propagate
  /// (the first one captured is rethrown after all work finishes).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace autolock::util
