#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace autolock::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << (fraction * 100.0)
      << '%';
  return oss.str();
}

}  // namespace autolock::util
