#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace autolock::util {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace autolock::util
