// SCOPE-style oracle-less synthesis attack (after Alaql et al.'s SCOPE):
// for each key bit, pin it to 0 and to 1, run the optimizer, and compare
// the synthesized circuit's cost metrics. A transparent key gate (XOR with
// the correct constant) simplifies away, while the wrong constant leaves an
// inverter behind — an area signal that leaks the bit with no oracle at all.
//
// Expected behaviour (and the point of including it): this attack strips
// classic XOR/XNOR RLL almost completely, but is *blind* against MUX-pair
// locking — pinning a MUX select collapses the MUX either way, with
// symmetric cost — which is precisely the deceptive property D-MUX
// introduced and AutoLock inherits.
#pragma once

#include <cstdint>
#include <vector>

#include "locking/mux_lock.hpp"
#include "netlist/netlist.hpp"

namespace autolock::attack {

struct AttackScratch;

struct ScopeResult {
  /// Per key bit: 0 / 1, or -1 when both hypotheses cost the same
  /// (undecidable by this attack).
  std::vector<int> predicted_bits;
  /// Synthesized gate counts for the (bit=0, bit=1) hypotheses.
  std::vector<std::pair<std::size_t, std::size_t>> areas;
};

struct ScopeScore {
  double accuracy_on_decided = 0.0;  // correct / decided
  double decided_fraction = 0.0;     // decided / all bits
  /// Forced accuracy counting undecided bits as coin flips (0.5 credit).
  double expected_overall_accuracy = 0.0;
  std::size_t key_bits = 0;
};

class ScopeAttack {
 public:
  ScopeResult attack(const netlist::Netlist& locked) const;

  /// Scratch-reusing variant: the per-hypothesis areas come from the flat
  /// gate-count optimizer (netlist::optimized_gate_count_with_key_bit)
  /// instead of two fully materialized synthesis runs per key bit. Areas —
  /// and therefore every decision — are identical to attack(locked).
  ScopeResult attack(const netlist::Netlist& locked,
                     AttackScratch& scratch) const;

  static ScopeScore score(const ScopeResult& result,
                          const netlist::Key& correct_key);

  ScopeScore run(const lock::LockedDesign& design) const {
    return score(attack(design.netlist), design.key);
  }

  ScopeScore run(const lock::LockedDesign& design,
                 AttackScratch& scratch) const {
    return score(attack(design.netlist, scratch), design.key);
  }
};

}  // namespace autolock::attack
