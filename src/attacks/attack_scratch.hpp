// Per-worker scratch state shared by the oracle-less attacks.
//
// One AttackScratch serves one worker thread for the lifetime of an
// evaluation loop: the CSR AttackGraph, the epoch-stamped BFS marks used by
// hard-negative sampling and subgraph extraction, the flat-optimizer
// buffers behind SCOPE's area queries, and assorted reusable vectors. Every
// attack resets the pieces it uses, so a scratch can be handed from design
// to design (and attack to attack) freely — results are bit-identical to
// the allocating legacy paths, which remain available for one-shot callers.
#pragma once

#include <vector>

#include "attacks/attack_graph.hpp"
#include "attacks/features.hpp"
#include "attacks/gnn.hpp"
#include "netlist/opt.hpp"
#include "util/epoch_flags.hpp"

namespace autolock::attack {

struct AttackScratch {
  /// Reused attacker-view graph (rebuilt per design, storage retained).
  AttackGraph graph;
  /// Visited marks for hard-negative BFS sampling.
  util::EpochFlags seen;
  /// Enclosing-subgraph extraction state (MuxLink).
  SubgraphScratch subgraph;
  /// One reusable inference subgraph (inference scores one link at a time).
  Subgraph inference_subgraph;
  /// Training-sample slots, reused across designs: the trainer needs every
  /// sample alive at once, so unlike inference there is one Subgraph per
  /// sample — but each slot's adjacency/feature buffers are retained, so a
  /// warm scratch assembles a training set without allocating.
  std::vector<Subgraph> train_samples;
  /// Flat-optimizer state for SCOPE's per-key-bit area queries.
  netlist::OptScratch opt;
  /// GNN forward/backward buffers (MuxLink training and inference).
  GnnScratch gnn;
  // BFS / sampling buffers.
  std::vector<netlist::NodeId> frontier;
  std::vector<netlist::NodeId> next_frontier;
  std::vector<netlist::NodeId> ring;
  std::vector<netlist::NodeId> present_nodes;
  std::vector<netlist::NodeId> present_sinks;
  std::vector<CandidateLink> positives;
  std::vector<CandidateLink> negatives;
  std::vector<std::size_t> levels;
  std::vector<std::size_t> order;
};

}  // namespace autolock::attack
