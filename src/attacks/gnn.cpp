#include "attacks/gnn.hpp"

#include <algorithm>
#include <cmath>

namespace autolock::attack {

namespace {

void xavier_init(Mat& mat, util::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(mat.rows + mat.cols));
  for (double& w : mat.data) w = (2.0 * rng.next_double() - 1.0) * limit;
}

void xavier_init(std::vector<double>& vec, std::size_t fan_in,
                 util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + 1));
  for (double& w : vec) w = (2.0 * rng.next_double() - 1.0) * limit;
}

/// out(n x c) = mean-aggregate of rows of in(n x c) over adjacency.
void mean_aggregate(const std::vector<std::vector<std::uint32_t>>& adjacency,
                    const Mat& in, Mat& out) {
  out = Mat(in.rows, in.cols);
  for (std::size_t i = 0; i < in.rows; ++i) {
    const auto& nbrs = adjacency[i];
    if (nbrs.empty()) continue;
    double* dst = &out.data[i * out.cols];
    for (std::uint32_t j : nbrs) {
      const double* src = &in.data[j * in.cols];
      for (std::size_t c = 0; c < in.cols; ++c) dst[c] += src[c];
    }
    const double inv = 1.0 / static_cast<double>(nbrs.size());
    for (std::size_t c = 0; c < in.cols; ++c) dst[c] *= inv;
  }
}

/// out(n x k) = a(n x c) * w(c x k)   (accumulating variant adds).
void matmul(const Mat& a, const Mat& w, Mat& out, bool accumulate) {
  if (!accumulate) out = Mat(a.rows, w.cols);
  for (std::size_t i = 0; i < a.rows; ++i) {
    const double* arow = &a.data[i * a.cols];
    double* orow = &out.data[i * out.cols];
    for (std::size_t c = 0; c < a.cols; ++c) {
      const double av = arow[c];
      if (av == 0.0) continue;
      const double* wrow = &w.data[c * w.cols];
      for (std::size_t k = 0; k < w.cols; ++k) orow[k] += av * wrow[k];
    }
  }
}

/// grad_w(c x k) += a(n x c)^T * d(n x k)
void accumulate_weight_grad(const Mat& a, const Mat& d, Mat& grad_w) {
  for (std::size_t i = 0; i < a.rows; ++i) {
    const double* arow = &a.data[i * a.cols];
    const double* drow = &d.data[i * d.cols];
    for (std::size_t c = 0; c < a.cols; ++c) {
      const double av = arow[c];
      if (av == 0.0) continue;
      double* grow = &grad_w.data[c * grad_w.cols];
      for (std::size_t k = 0; k < d.cols; ++k) grow[k] += av * drow[k];
    }
  }
}

}  // namespace

Gnn::Gnn(const GnnConfig& config, std::uint64_t seed) : config_(config) {
  util::Rng rng(seed ^ 0x6E6EULL);
  const std::size_t d0 = config.input_dim;
  const std::size_t h = config.hidden_dim;
  const std::size_t m = config.mlp_dim;

  layer1_.w_self = Mat(d0, h);
  layer1_.w_neigh = Mat(d0, h);
  layer1_.bias.assign(h, 0.0);
  layer2_.w_self = Mat(h, h);
  layer2_.w_neigh = Mat(h, h);
  layer2_.bias.assign(h, 0.0);
  mlp_w1_ = Mat(h, m);
  mlp_b1_.assign(m, 0.0);
  mlp_w2_.assign(m, 0.0);
  xavier_init(layer1_.w_self, rng);
  xavier_init(layer1_.w_neigh, rng);
  xavier_init(layer2_.w_self, rng);
  xavier_init(layer2_.w_neigh, rng);
  xavier_init(mlp_w1_, rng);
  xavier_init(mlp_w2_, m, rng);

  g_layer1_.w_self = Mat(d0, h);
  g_layer1_.w_neigh = Mat(d0, h);
  g_layer1_.bias.assign(h, 0.0);
  g_layer2_.w_self = Mat(h, h);
  g_layer2_.w_neigh = Mat(h, h);
  g_layer2_.bias.assign(h, 0.0);
  g_mlp_w1_ = Mat(h, m);
  g_mlp_b1_.assign(m, 0.0);
  g_mlp_w2_.assign(m, 0.0);

  const auto params = const_cast<Gnn*>(this)->param_views();
  adam_.resize(params.size() + 1);  // +1 for the scalar mlp_b2_
  for (std::size_t p = 0; p < params.size(); ++p) {
    adam_[p].m.assign(params[p]->size(), 0.0);
    adam_[p].v.assign(params[p]->size(), 0.0);
  }
  adam_.back().m.assign(1, 0.0);
  adam_.back().v.assign(1, 0.0);
}

std::vector<std::vector<double>*> Gnn::param_views() {
  return {&layer1_.w_self.data, &layer1_.w_neigh.data, &layer1_.bias,
          &layer2_.w_self.data, &layer2_.w_neigh.data, &layer2_.bias,
          &mlp_w1_.data,        &mlp_b1_,              &mlp_w2_};
}

std::vector<std::vector<double>*> Gnn::grad_views() {
  return {&g_layer1_.w_self.data, &g_layer1_.w_neigh.data, &g_layer1_.bias,
          &g_layer2_.w_self.data, &g_layer2_.w_neigh.data, &g_layer2_.bias,
          &g_mlp_w1_.data,        &g_mlp_b1_,              &g_mlp_w2_};
}

Gnn::Forward Gnn::forward(const Subgraph& sample) const {
  Forward fwd;
  const std::size_t n = sample.node_count;
  const std::size_t d0 = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  const std::size_t m = config_.mlp_dim;

  fwd.x = Mat(n, d0);
  std::copy(sample.features.begin(), sample.features.end(), fwd.x.data.begin());

  // Layer 1.
  mean_aggregate(sample.adjacency, fwd.x, fwd.agg0);
  matmul(fwd.x, layer1_.w_self, fwd.z1, false);
  matmul(fwd.agg0, layer1_.w_neigh, fwd.z1, true);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) fwd.z1.at(i, k) += layer1_.bias[k];
  }
  fwd.h1 = fwd.z1;
  for (double& value : fwd.h1.data) value = std::max(value, 0.0);

  // Layer 2.
  mean_aggregate(sample.adjacency, fwd.h1, fwd.agg1);
  matmul(fwd.h1, layer2_.w_self, fwd.z2, false);
  matmul(fwd.agg1, layer2_.w_neigh, fwd.z2, true);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) fwd.z2.at(i, k) += layer2_.bias[k];
  }
  fwd.h2 = fwd.z2;
  for (double& value : fwd.h2.data) value = std::max(value, 0.0);

  // Mean pooling.
  fwd.pooled.assign(h, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) fwd.pooled[k] += fwd.h2.at(i, k);
  }
  if (n > 0) {
    for (double& value : fwd.pooled) value /= static_cast<double>(n);
  }

  // MLP head.
  fwd.mlp_z.assign(m, 0.0);
  for (std::size_t a = 0; a < h; ++a) {
    const double pa = fwd.pooled[a];
    if (pa == 0.0) continue;
    for (std::size_t k = 0; k < m; ++k) {
      fwd.mlp_z[k] += pa * mlp_w1_.at(a, k);
    }
  }
  for (std::size_t k = 0; k < m; ++k) fwd.mlp_z[k] += mlp_b1_[k];
  fwd.mlp_h = fwd.mlp_z;
  for (double& value : fwd.mlp_h) value = std::max(value, 0.0);

  fwd.logit = mlp_b2_;
  for (std::size_t k = 0; k < m; ++k) fwd.logit += fwd.mlp_h[k] * mlp_w2_[k];
  fwd.prob = 1.0 / (1.0 + std::exp(-fwd.logit));
  return fwd;
}

double Gnn::predict(const Subgraph& sample) const {
  return forward(sample).prob;
}

void Gnn::backward(const Subgraph& sample, const Forward& fwd, double dlogit) {
  const std::size_t n = sample.node_count;
  const std::size_t h = config_.hidden_dim;
  const std::size_t m = config_.mlp_dim;

  // MLP head.
  g_mlp_b2_ += dlogit;
  std::vector<double> d_mlp_h(m);
  for (std::size_t k = 0; k < m; ++k) {
    g_mlp_w2_[k] += dlogit * fwd.mlp_h[k];
    d_mlp_h[k] = dlogit * mlp_w2_[k];
  }
  std::vector<double> d_mlp_z(m);
  for (std::size_t k = 0; k < m; ++k) {
    d_mlp_z[k] = fwd.mlp_z[k] > 0.0 ? d_mlp_h[k] : 0.0;
    g_mlp_b1_[k] += d_mlp_z[k];
  }
  std::vector<double> d_pooled(h, 0.0);
  for (std::size_t a = 0; a < h; ++a) {
    for (std::size_t k = 0; k < m; ++k) {
      g_mlp_w1_.at(a, k) += fwd.pooled[a] * d_mlp_z[k];
      d_pooled[a] += mlp_w1_.at(a, k) * d_mlp_z[k];
    }
  }

  // Un-pool (mean): every node row receives d_pooled / n.
  Mat d_h2(n, h);
  const double inv_n = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) {
      d_h2.at(i, k) = d_pooled[k] * inv_n;
    }
  }

  // Layer 2 backward.
  Mat d_z2 = d_h2;
  for (std::size_t idx = 0; idx < d_z2.data.size(); ++idx) {
    if (fwd.z2.data[idx] <= 0.0) d_z2.data[idx] = 0.0;
  }
  accumulate_weight_grad(fwd.h1, d_z2, g_layer2_.w_self);
  accumulate_weight_grad(fwd.agg1, d_z2, g_layer2_.w_neigh);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) g_layer2_.bias[k] += d_z2.at(i, k);
  }
  // d_h1 = d_z2 * W2s^T + Agg^T(d_z2 * W2n^T)
  Mat d_h1(n, h);
  Mat d_agg1(n, h);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < h; ++c) {
      double acc_self = 0.0;
      double acc_neigh = 0.0;
      for (std::size_t k = 0; k < h; ++k) {
        acc_self += d_z2.at(i, k) * layer2_.w_self.at(c, k);
        acc_neigh += d_z2.at(i, k) * layer2_.w_neigh.at(c, k);
      }
      d_h1.at(i, c) = acc_self;
      d_agg1.at(i, c) = acc_neigh;
    }
  }
  // Transpose of mean aggregation: d_h1[j] += sum_{i : j in N(i)} d_agg1[i]/|N(i)|.
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nbrs = sample.adjacency[i];
    if (nbrs.empty()) continue;
    const double inv = 1.0 / static_cast<double>(nbrs.size());
    for (std::uint32_t j : nbrs) {
      for (std::size_t c = 0; c < h; ++c) {
        d_h1.at(j, c) += d_agg1.at(i, c) * inv;
      }
    }
  }

  // Layer 1 backward.
  Mat d_z1 = d_h1;
  for (std::size_t idx = 0; idx < d_z1.data.size(); ++idx) {
    if (fwd.z1.data[idx] <= 0.0) d_z1.data[idx] = 0.0;
  }
  accumulate_weight_grad(fwd.x, d_z1, g_layer1_.w_self);
  accumulate_weight_grad(fwd.agg0, d_z1, g_layer1_.w_neigh);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) g_layer1_.bias[k] += d_z1.at(i, k);
  }
}

void Gnn::adam_step() {
  ++adam_t_;
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));

  auto params = param_views();
  auto grads = grad_views();
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto& param = *params[p];
    auto& grad = *grads[p];
    auto& state = adam_[p];
    for (std::size_t i = 0; i < param.size(); ++i) {
      state.m[i] = kBeta1 * state.m[i] + (1.0 - kBeta1) * grad[i];
      state.v[i] = kBeta2 * state.v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
      const double m_hat = state.m[i] / bias1;
      const double v_hat = state.v[i] / bias2;
      param[i] -= config_.learning_rate *
                  (m_hat / (std::sqrt(v_hat) + kEps) +
                   config_.weight_decay * param[i]);
      grad[i] = 0.0;
    }
  }
  // Scalar bias.
  auto& state = adam_.back();
  state.m[0] = kBeta1 * state.m[0] + (1.0 - kBeta1) * g_mlp_b2_;
  state.v[0] = kBeta2 * state.v[0] + (1.0 - kBeta2) * g_mlp_b2_ * g_mlp_b2_;
  mlp_b2_ -= config_.learning_rate *
             ((state.m[0] / bias1) / (std::sqrt(state.v[0] / bias2) + kEps));
  g_mlp_b2_ = 0.0;
}

double Gnn::train_epoch(const std::vector<Subgraph>& samples,
                        const std::vector<std::size_t>& order) {
  double loss_sum = 0.0;
  std::size_t in_batch = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const Subgraph& sample = samples[order[pos]];
    const Forward fwd = forward(sample);
    const double p = std::clamp(fwd.prob, 1e-9, 1.0 - 1e-9);
    loss_sum += -(sample.label * std::log(p) +
                  (1.0 - sample.label) * std::log(1.0 - p));
    const double dlogit = (fwd.prob - sample.label) /
                          static_cast<double>(config_.batch_size);
    backward(sample, fwd, dlogit);
    if (++in_batch == config_.batch_size || pos + 1 == order.size()) {
      adam_step();
      in_batch = 0;
    }
  }
  return order.empty() ? 0.0 : loss_sum / static_cast<double>(order.size());
}

}  // namespace autolock::attack
