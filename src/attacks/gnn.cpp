#include "attacks/gnn.hpp"

#include <algorithm>
#include <cmath>

namespace autolock::attack {

namespace detail {

// The micro-kernels below block the output into register tiles and keep the
// reduction loop innermost and ASCENDING: each output element therefore
// accumulates its terms in exactly the order of the naive triple loop, so
// blocked and naive results are bit-identical (packed vmulpd/vaddpd perform
// the same IEEE operation per lane as their scalar forms, and gnn.cpp is
// compiled with -ffp-contract=off so no FMA rounds differently). The old
// kernels' `if (av == 0.0) continue;` zero-skip is gone — adding a ±0.0
// term never changes a running sum that started at +0.0, and the branch
// cost more than the multiply on dense activations.
//
// GCC refuses to keep a `double acc[4][8]` tile in ymm registers (it
// spills every add to the stack — measured 3x slower than gemm_at, whose
// tile it did promote), so the tiles are spelled as explicit 4-lane vector
// variables via the GNU vector extension. Plain scalar fallback otherwise.

#if defined(__GNUC__) || defined(__clang__)
#define AUTOLOCK_GNN_VEC 1
#endif

#if AUTOLOCK_GNN_VEC

namespace {

typedef double V4 __attribute__((vector_size(32)));

inline V4 v4_load(const double* __restrict p) {
  V4 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void v4_store(double* __restrict p, V4 v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

inline V4 v4_splat(double x) { return V4{x, x, x, x}; }

}  // namespace

void gemm(const double* a_, const double* b_, double* c_, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate) {
  const double* __restrict a = a_;
  const double* __restrict b = b_;
  double* __restrict c = c_;
  constexpr std::size_t kTileM = 4;
  constexpr std::size_t kTileN = 8;
  const V4 zero = v4_splat(0.0);
  std::size_t i = 0;
  for (; i + kTileM <= m; i += kTileM) {
    const double* __restrict a0 = a + (i + 0) * k;
    const double* __restrict a1 = a + (i + 1) * k;
    const double* __restrict a2 = a + (i + 2) * k;
    const double* __restrict a3 = a + (i + 3) * k;
    double* __restrict c0 = c + (i + 0) * n;
    double* __restrict c1 = c + (i + 1) * n;
    double* __restrict c2 = c + (i + 2) * n;
    double* __restrict c3 = c + (i + 3) * n;
    std::size_t j = 0;
    for (; j + kTileN <= n; j += kTileN) {
      V4 s00 = zero, s01 = zero, s10 = zero, s11 = zero;
      V4 s20 = zero, s21 = zero, s30 = zero, s31 = zero;
      if (accumulate) {
        s00 = v4_load(c0 + j), s01 = v4_load(c0 + j + 4);
        s10 = v4_load(c1 + j), s11 = v4_load(c1 + j + 4);
        s20 = v4_load(c2 + j), s21 = v4_load(c2 + j + 4);
        s30 = v4_load(c3 + j), s31 = v4_load(c3 + j + 4);
      }
      for (std::size_t p = 0; p < k; ++p) {
        const V4 b0 = v4_load(b + p * n + j);
        const V4 b1 = v4_load(b + p * n + j + 4);
        V4 av = v4_splat(a0[p]);
        s00 += av * b0, s01 += av * b1;
        av = v4_splat(a1[p]);
        s10 += av * b0, s11 += av * b1;
        av = v4_splat(a2[p]);
        s20 += av * b0, s21 += av * b1;
        av = v4_splat(a3[p]);
        s30 += av * b0, s31 += av * b1;
      }
      v4_store(c0 + j, s00), v4_store(c0 + j + 4, s01);
      v4_store(c1 + j, s10), v4_store(c1 + j + 4, s11);
      v4_store(c2 + j, s20), v4_store(c2 + j + 4, s21);
      v4_store(c3 + j, s30), v4_store(c3 + j + 4, s31);
    }
    for (; j < n; ++j) {
      double acc0 = accumulate ? c0[j] : 0.0;
      double acc1 = accumulate ? c1[j] : 0.0;
      double acc2 = accumulate ? c2[j] : 0.0;
      double acc3 = accumulate ? c3[j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double bv = b[p * n + j];
        acc0 += a0[p] * bv;
        acc1 += a1[p] * bv;
        acc2 += a2[p] * bv;
        acc3 += a3[p] * bv;
      }
      c0[j] = acc0, c1[j] = acc1, c2[j] = acc2, c3[j] = acc3;
    }
  }
  for (; i < m; ++i) {
    const double* __restrict arow = a + i * k;
    double* __restrict crow = c + i * n;
    std::size_t j = 0;
    for (; j + kTileN <= n; j += kTileN) {
      V4 s0 = zero, s1 = zero;
      if (accumulate) s0 = v4_load(crow + j), s1 = v4_load(crow + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const V4 av = v4_splat(arow[p]);
        s0 += av * v4_load(b + p * n + j);
        s1 += av * v4_load(b + p * n + j + 4);
      }
      v4_store(crow + j, s0), v4_store(crow + j + 4, s1);
    }
    for (; j < n; ++j) {
      double acc = accumulate ? crow[j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * b[p * n + j];
      crow[j] = acc;
    }
  }
}

void gemm_at(const double* a_, const double* d_, double* c_, std::size_t m,
             std::size_t k, std::size_t n) {
  const double* __restrict a = a_;
  const double* __restrict d = d_;
  double* __restrict c = c_;
  constexpr std::size_t kTileC = 4;
  constexpr std::size_t kTileN = 8;
  std::size_t cc = 0;
  for (; cc + kTileC <= k; cc += kTileC) {
    double* __restrict c0 = c + (cc + 0) * n;
    double* __restrict c1 = c + (cc + 1) * n;
    double* __restrict c2 = c + (cc + 2) * n;
    double* __restrict c3 = c + (cc + 3) * n;
    std::size_t j = 0;
    for (; j + kTileN <= n; j += kTileN) {
      V4 s00 = v4_load(c0 + j), s01 = v4_load(c0 + j + 4);
      V4 s10 = v4_load(c1 + j), s11 = v4_load(c1 + j + 4);
      V4 s20 = v4_load(c2 + j), s21 = v4_load(c2 + j + 4);
      V4 s30 = v4_load(c3 + j), s31 = v4_load(c3 + j + 4);
      for (std::size_t p = 0; p < m; ++p) {
        const double* __restrict arow = a + p * k + cc;
        const V4 d0 = v4_load(d + p * n + j);
        const V4 d1 = v4_load(d + p * n + j + 4);
        V4 av = v4_splat(arow[0]);
        s00 += av * d0, s01 += av * d1;
        av = v4_splat(arow[1]);
        s10 += av * d0, s11 += av * d1;
        av = v4_splat(arow[2]);
        s20 += av * d0, s21 += av * d1;
        av = v4_splat(arow[3]);
        s30 += av * d0, s31 += av * d1;
      }
      v4_store(c0 + j, s00), v4_store(c0 + j + 4, s01);
      v4_store(c1 + j, s10), v4_store(c1 + j + 4, s11);
      v4_store(c2 + j, s20), v4_store(c2 + j + 4, s21);
      v4_store(c3 + j, s30), v4_store(c3 + j + 4, s31);
    }
    for (; j < n; ++j) {
      double acc0 = c0[j], acc1 = c1[j], acc2 = c2[j], acc3 = c3[j];
      for (std::size_t p = 0; p < m; ++p) {
        const double dv = d[p * n + j];
        acc0 += a[p * k + cc + 0] * dv;
        acc1 += a[p * k + cc + 1] * dv;
        acc2 += a[p * k + cc + 2] * dv;
        acc3 += a[p * k + cc + 3] * dv;
      }
      c0[j] = acc0, c1[j] = acc1, c2[j] = acc2, c3[j] = acc3;
    }
  }
  for (; cc < k; ++cc) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[cc * n + j];
      for (std::size_t p = 0; p < m; ++p) acc += a[p * k + cc] * d[p * n + j];
      c[cc * n + j] = acc;
    }
  }
}

#else  // !AUTOLOCK_GNN_VEC — scalar fallbacks, same reduction order.

void gemm(const double* a_, const double* b_, double* c_, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate) {
  const double* __restrict a = a_;
  const double* __restrict b = b_;
  double* __restrict c = c_;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? c[i * n + j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

void gemm_at(const double* a_, const double* d_, double* c_, std::size_t m,
             std::size_t k, std::size_t n) {
  const double* __restrict a = a_;
  const double* __restrict d = d_;
  double* __restrict c = c_;
  for (std::size_t cc = 0; cc < k; ++cc) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[cc * n + j];
      for (std::size_t p = 0; p < m; ++p) acc += a[p * k + cc] * d[p * n + j];
      c[cc * n + j] = acc;
    }
  }
}

#endif  // AUTOLOCK_GNN_VEC

void transpose(const double* in, double* out, std::size_t rows,
               std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
  }
}

}  // namespace detail

namespace {

void xavier_init(Mat& mat, util::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(mat.rows + mat.cols));
  for (double& w : mat.data) w = (2.0 * rng.next_double() - 1.0) * limit;
}

void xavier_init(std::vector<double>& vec, std::size_t fan_in,
                 util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + 1));
  for (double& w : vec) w = (2.0 * rng.next_double() - 1.0) * limit;
}

/// Copies the sample's vector-of-vectors adjacency into the scratch's flat
/// CSR arrays (neighbor list order — including duplicates — preserved).
void flatten_adjacency(const Subgraph& sample, GnnScratch& scratch) {
  const std::size_t n = sample.node_count;
  scratch.adj_offsets.resize(n + 1);
  scratch.adj_edges.clear();
  for (std::size_t i = 0; i < n; ++i) {
    scratch.adj_offsets[i] = static_cast<std::uint32_t>(scratch.adj_edges.size());
    const auto& nbrs = sample.adjacency[i];
    scratch.adj_edges.insert(scratch.adj_edges.end(), nbrs.begin(), nbrs.end());
  }
  scratch.adj_offsets[n] = static_cast<std::uint32_t>(scratch.adj_edges.size());
}

/// out(n x c) = mean of rows of in(n x c) over the CSR adjacency.
void mean_aggregate_csr(const std::vector<std::uint32_t>& offsets,
                        const std::vector<std::uint32_t>& edges, const Mat& in,
                        Mat& out) {
  out.reshape(in.rows, in.cols);
  const std::size_t cols = in.cols;
  const double* __restrict src_base = in.data.data();
  for (std::size_t i = 0; i < in.rows; ++i) {
    double* __restrict dst = &out.data[i * cols];
    const std::uint32_t begin = offsets[i];
    const std::uint32_t end = offsets[i + 1];
    for (std::size_t c = 0; c < cols; ++c) dst[c] = 0.0;
    if (begin == end) continue;
    for (std::uint32_t e = begin; e < end; ++e) {
      const double* __restrict src = src_base + edges[e] * cols;
      for (std::size_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
    const double inv = 1.0 / static_cast<double>(end - begin);
    for (std::size_t c = 0; c < cols; ++c) dst[c] *= inv;
  }
}

}  // namespace

Gnn::Gnn(const GnnConfig& config, std::uint64_t seed) : config_(config) {
  util::Rng rng(seed ^ 0x6E6EULL);
  const std::size_t d0 = config.input_dim;
  const std::size_t h = config.hidden_dim;
  const std::size_t m = config.mlp_dim;

  layer1_.w_self = Mat(d0, h);
  layer1_.w_neigh = Mat(d0, h);
  layer1_.bias.assign(h, 0.0);
  layer2_.w_self = Mat(h, h);
  layer2_.w_neigh = Mat(h, h);
  layer2_.bias.assign(h, 0.0);
  mlp_w1_ = Mat(h, m);
  mlp_b1_.assign(m, 0.0);
  mlp_w2_.assign(m, 0.0);
  xavier_init(layer1_.w_self, rng);
  xavier_init(layer1_.w_neigh, rng);
  xavier_init(layer2_.w_self, rng);
  xavier_init(layer2_.w_neigh, rng);
  xavier_init(mlp_w1_, rng);
  xavier_init(mlp_w2_, m, rng);

  g_layer1_.w_self = Mat(d0, h);
  g_layer1_.w_neigh = Mat(d0, h);
  g_layer1_.bias.assign(h, 0.0);
  g_layer2_.w_self = Mat(h, h);
  g_layer2_.w_neigh = Mat(h, h);
  g_layer2_.bias.assign(h, 0.0);
  g_mlp_w1_ = Mat(h, m);
  g_mlp_b1_.assign(m, 0.0);
  g_mlp_w2_.assign(m, 0.0);

  const auto params = const_cast<Gnn*>(this)->param_views();
  adam_.resize(params.size() + 1);  // +1 for the scalar mlp_b2_
  for (std::size_t p = 0; p < params.size(); ++p) {
    adam_[p].m.assign(params[p]->size(), 0.0);
    adam_[p].v.assign(params[p]->size(), 0.0);
  }
  adam_.back().m.assign(1, 0.0);
  adam_.back().v.assign(1, 0.0);
}

std::vector<std::vector<double>*> Gnn::param_views() {
  return {&layer1_.w_self.data, &layer1_.w_neigh.data, &layer1_.bias,
          &layer2_.w_self.data, &layer2_.w_neigh.data, &layer2_.bias,
          &mlp_w1_.data,        &mlp_b1_,              &mlp_w2_};
}

std::vector<std::vector<double>*> Gnn::grad_views() {
  return {&g_layer1_.w_self.data, &g_layer1_.w_neigh.data, &g_layer1_.bias,
          &g_layer2_.w_self.data, &g_layer2_.w_neigh.data, &g_layer2_.bias,
          &g_mlp_w1_.data,        &g_mlp_b1_,              &g_mlp_w2_};
}

void Gnn::forward(const Subgraph& sample, GnnScratch& scratch) const {
  const std::size_t n = sample.node_count;
  const std::size_t d0 = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  const std::size_t m = config_.mlp_dim;

  flatten_adjacency(sample, scratch);
  scratch.x.reshape(n, d0);
  std::copy(sample.features.begin(), sample.features.end(),
            scratch.x.data.begin());

  // Layer 1.
  mean_aggregate_csr(scratch.adj_offsets, scratch.adj_edges, scratch.x,
                     scratch.agg0);
  scratch.z1.reshape(n, h);
  detail::gemm(scratch.x.data.data(), layer1_.w_self.data.data(),
               scratch.z1.data.data(), n, d0, h, false);
  detail::gemm(scratch.agg0.data.data(), layer1_.w_neigh.data.data(),
               scratch.z1.data.data(), n, d0, h, true);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) scratch.z1.at(i, k) += layer1_.bias[k];
  }
  scratch.h1.reshape(n, h);
  for (std::size_t idx = 0; idx < scratch.z1.data.size(); ++idx) {
    scratch.h1.data[idx] = std::max(scratch.z1.data[idx], 0.0);
  }

  // Layer 2.
  mean_aggregate_csr(scratch.adj_offsets, scratch.adj_edges, scratch.h1,
                     scratch.agg1);
  scratch.z2.reshape(n, h);
  detail::gemm(scratch.h1.data.data(), layer2_.w_self.data.data(),
               scratch.z2.data.data(), n, h, h, false);
  detail::gemm(scratch.agg1.data.data(), layer2_.w_neigh.data.data(),
               scratch.z2.data.data(), n, h, h, true);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) scratch.z2.at(i, k) += layer2_.bias[k];
  }
  scratch.h2.reshape(n, h);
  for (std::size_t idx = 0; idx < scratch.z2.data.size(); ++idx) {
    scratch.h2.data[idx] = std::max(scratch.z2.data[idx], 0.0);
  }

  // Mean pooling.
  scratch.pooled.assign(h, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) scratch.pooled[k] += scratch.h2.at(i, k);
  }
  if (n > 0) {
    for (double& value : scratch.pooled) value /= static_cast<double>(n);
  }

  // MLP head (h x m is register-sized; plain loops, reduction ascending).
  scratch.mlp_z.assign(m, 0.0);
  for (std::size_t a = 0; a < h; ++a) {
    const double pa = scratch.pooled[a];
    for (std::size_t k = 0; k < m; ++k) {
      scratch.mlp_z[k] += pa * mlp_w1_.at(a, k);
    }
  }
  for (std::size_t k = 0; k < m; ++k) scratch.mlp_z[k] += mlp_b1_[k];
  scratch.mlp_h = scratch.mlp_z;
  for (double& value : scratch.mlp_h) value = std::max(value, 0.0);

  scratch.logit = mlp_b2_;
  for (std::size_t k = 0; k < m; ++k) {
    scratch.logit += scratch.mlp_h[k] * mlp_w2_[k];
  }
  scratch.prob = 1.0 / (1.0 + std::exp(-scratch.logit));
}

double Gnn::predict(const Subgraph& sample, GnnScratch& scratch) const {
  forward(sample, scratch);
  return scratch.prob;
}

double Gnn::predict(const Subgraph& sample) const {
  GnnScratch scratch;
  return predict(sample, scratch);
}

void Gnn::backward(const Subgraph& sample, GnnScratch& scratch,
                   double dlogit) {
  const std::size_t n = sample.node_count;
  const std::size_t d0 = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  const std::size_t m = config_.mlp_dim;

  // MLP head.
  g_mlp_b2_ += dlogit;
  scratch.d_mlp_h.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    g_mlp_w2_[k] += dlogit * scratch.mlp_h[k];
    scratch.d_mlp_h[k] = dlogit * mlp_w2_[k];
  }
  scratch.d_mlp_z.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    scratch.d_mlp_z[k] = scratch.mlp_z[k] > 0.0 ? scratch.d_mlp_h[k] : 0.0;
    g_mlp_b1_[k] += scratch.d_mlp_z[k];
  }
  scratch.d_pooled.assign(h, 0.0);
  for (std::size_t a = 0; a < h; ++a) {
    for (std::size_t k = 0; k < m; ++k) {
      g_mlp_w1_.at(a, k) += scratch.pooled[a] * scratch.d_mlp_z[k];
      scratch.d_pooled[a] += mlp_w1_.at(a, k) * scratch.d_mlp_z[k];
    }
  }

  // Un-pool (mean): every node row receives d_pooled / n.
  scratch.d_h2.reshape(n, h);
  const double inv_n = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) {
      scratch.d_h2.at(i, k) = scratch.d_pooled[k] * inv_n;
    }
  }

  // Layer 2 backward.
  scratch.d_z2.reshape(n, h);
  for (std::size_t idx = 0; idx < scratch.d_z2.data.size(); ++idx) {
    scratch.d_z2.data[idx] =
        scratch.z2.data[idx] > 0.0 ? scratch.d_h2.data[idx] : 0.0;
  }
  detail::gemm_at(scratch.h1.data.data(), scratch.d_z2.data.data(),
                  g_layer2_.w_self.data.data(), n, h, h);
  detail::gemm_at(scratch.agg1.data.data(), scratch.d_z2.data.data(),
                  g_layer2_.w_neigh.data.data(), n, h, h);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) {
      g_layer2_.bias[k] += scratch.d_z2.at(i, k);
    }
  }
  // d_h1 = d_z2 * W2s^T; d_agg1 = d_z2 * W2n^T. The weight transpose is
  // staged explicitly so both products run on the row-major kernel.
  scratch.d_h1.reshape(n, h);
  scratch.d_agg1.reshape(n, h);
  scratch.w_t.reshape(h, h);
  detail::transpose(layer2_.w_self.data.data(), scratch.w_t.data.data(), h, h);
  detail::gemm(scratch.d_z2.data.data(), scratch.w_t.data.data(),
               scratch.d_h1.data.data(), n, h, h, false);
  detail::transpose(layer2_.w_neigh.data.data(), scratch.w_t.data.data(), h, h);
  detail::gemm(scratch.d_z2.data.data(), scratch.w_t.data.data(),
               scratch.d_agg1.data.data(), n, h, h, false);
  // Transpose of mean aggregation over the CSR rows:
  // d_h1[j] += sum_{i : j in N(i)} d_agg1[i] / |N(i)|.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t begin = scratch.adj_offsets[i];
    const std::uint32_t end = scratch.adj_offsets[i + 1];
    if (begin == end) continue;
    const double inv = 1.0 / static_cast<double>(end - begin);
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t j = scratch.adj_edges[e];
      for (std::size_t c = 0; c < h; ++c) {
        scratch.d_h1.at(j, c) += scratch.d_agg1.at(i, c) * inv;
      }
    }
  }

  // Layer 1 backward.
  scratch.d_z1.reshape(n, h);
  for (std::size_t idx = 0; idx < scratch.d_z1.data.size(); ++idx) {
    scratch.d_z1.data[idx] =
        scratch.z1.data[idx] > 0.0 ? scratch.d_h1.data[idx] : 0.0;
  }
  detail::gemm_at(scratch.x.data.data(), scratch.d_z1.data.data(),
                  g_layer1_.w_self.data.data(), n, d0, h);
  detail::gemm_at(scratch.agg0.data.data(), scratch.d_z1.data.data(),
                  g_layer1_.w_neigh.data.data(), n, d0, h);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < h; ++k) {
      g_layer1_.bias[k] += scratch.d_z1.at(i, k);
    }
  }
}

void Gnn::adam_step() {
  ++adam_t_;
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));

  auto params = param_views();
  auto grads = grad_views();
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto& param = *params[p];
    auto& grad = *grads[p];
    auto& state = adam_[p];
    for (std::size_t i = 0; i < param.size(); ++i) {
      state.m[i] = kBeta1 * state.m[i] + (1.0 - kBeta1) * grad[i];
      state.v[i] = kBeta2 * state.v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
      const double m_hat = state.m[i] / bias1;
      const double v_hat = state.v[i] / bias2;
      param[i] -= config_.learning_rate *
                  (m_hat / (std::sqrt(v_hat) + kEps) +
                   config_.weight_decay * param[i]);
      grad[i] = 0.0;
    }
  }
  // Scalar bias.
  auto& state = adam_.back();
  state.m[0] = kBeta1 * state.m[0] + (1.0 - kBeta1) * g_mlp_b2_;
  state.v[0] = kBeta2 * state.v[0] + (1.0 - kBeta2) * g_mlp_b2_ * g_mlp_b2_;
  mlp_b2_ -= config_.learning_rate *
             ((state.m[0] / bias1) / (std::sqrt(state.v[0] / bias2) + kEps));
  g_mlp_b2_ = 0.0;
}

double Gnn::train_epoch(const std::vector<Subgraph>& samples,
                        const std::vector<std::size_t>& order,
                        GnnScratch& scratch) {
  double loss_sum = 0.0;
  std::size_t in_batch = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const Subgraph& sample = samples[order[pos]];
    forward(sample, scratch);
    const double p = std::clamp(scratch.prob, 1e-9, 1.0 - 1e-9);
    loss_sum += -(sample.label * std::log(p) +
                  (1.0 - sample.label) * std::log(1.0 - p));
    const double dlogit = (scratch.prob - sample.label) /
                          static_cast<double>(config_.batch_size);
    backward(sample, scratch, dlogit);
    if (++in_batch == config_.batch_size || pos + 1 == order.size()) {
      adam_step();
      in_batch = 0;
    }
  }
  return order.empty() ? 0.0 : loss_sum / static_cast<double>(order.size());
}

double Gnn::train_epoch(const std::vector<Subgraph>& samples,
                        const std::vector<std::size_t>& order) {
  GnnScratch scratch;
  return train_epoch(samples, order, scratch);
}

}  // namespace autolock::attack
