#include "attacks/sat_attack.hpp"

#include <stdexcept>

#include "sat/cnf.hpp"
#include "util/timer.hpp"

namespace autolock::attack {

using netlist::Key;
using netlist::Netlist;
using netlist::Simulator;
using sat::Encoding;
using sat::make_lit;
using sat::SolveResult;
using sat::Var;

SatAttack::SatAttack(SatAttackConfig config) : config_(config) {}

SatAttackResult SatAttack::attack(const Netlist& locked,
                                  const Netlist& oracle) const {
  util::Timer timer;
  SatAttackResult result;

  const auto key_nodes = locked.key_inputs();
  const std::size_t key_bits = key_nodes.size();
  if (key_bits == 0) {
    result.success = true;
    result.seconds = timer.elapsed_seconds();
    return result;
  }
  if (locked.primary_inputs().size() != oracle.primary_inputs().size() ||
      locked.outputs().size() != oracle.outputs().size()) {
    throw std::invalid_argument("SatAttack: interface mismatch");
  }

  const Simulator oracle_sim(oracle);

  sat::Solver solver;
  if (config_.conflict_budget != 0) {
    solver.set_conflict_budget(config_.conflict_budget);
  }

  // Two copies of the locked circuit sharing primary inputs, with
  // independent key variable sets K1 and K2.
  const Encoding enc1 = sat::encode_netlist(solver, locked);
  const Encoding enc2 =
      sat::encode_netlist(solver, locked, enc1.primary_input_var, std::nullopt);
  const Var miter = sat::make_miter(solver, enc1, enc2);

  const std::size_t primary_count = enc1.primary_input_var.size();

  auto record_stats = [&] {
    const sat::Solver::Stats& stats = solver.stats();
    result.total_conflicts = stats.conflicts;
    result.total_decisions = stats.decisions;
    result.total_propagations = stats.propagations;
    result.gc_runs = stats.gc_runs;
    result.db_reductions = stats.db_reductions;
    result.peak_arena_bytes = stats.peak_arena_bytes;
    result.mean_lbd = stats.mean_lbd();
  };

  for (;;) {
    if (config_.max_iterations != 0 &&
        result.dip_iterations >= config_.max_iterations) {
      record_stats();
      result.budget_exhausted = true;
      result.seconds = timer.elapsed_seconds();
      return result;
    }
    const SolveResult res = solver.solve({make_lit(miter, false)});
    if (res == SolveResult::kUnknown) {
      record_stats();
      result.budget_exhausted = true;
      result.seconds = timer.elapsed_seconds();
      return result;
    }
    if (res == SolveResult::kUnsat) break;  // no DIP remains

    // Extract the DIP and query the oracle.
    ++result.dip_iterations;
    std::vector<bool> dip(primary_count);
    for (std::size_t i = 0; i < primary_count; ++i) {
      dip[i] = solver.model_value(enc1.primary_input_var[i]);
    }
    const std::vector<bool> response = oracle_sim.run_single(dip, Key{});

    // Pin two fresh copies of the locked circuit to (dip -> response), one
    // per key variable set. This is the IO constraint that prunes keys.
    // The DIP inputs are pinned as level-0 facts BEFORE the copy is
    // encoded, so add_clause's level-0 simplification constant-folds the
    // input cones while encoding: the copy costs far fewer clauses and
    // watch-list visits. Note this changes watch-list structure vs
    // pin-after-encode, so the (still fully deterministic) trajectory was
    // re-baselined in the pinned tests when this was introduced.
    for (const auto& key_vars : {enc1.key_var, enc2.key_var}) {
      const Encoding pinned = sat::encode_netlist(
          solver, locked, sat::pin_constants(solver, dip), key_vars);
      for (std::size_t o = 0; o < pinned.output_var.size(); ++o) {
        solver.add_clause(make_lit(pinned.output_var[o], !response[o]));
      }
    }
  }

  // Any key consistent with all IO constraints is correct. Solve without
  // the miter assumption to obtain one.
  const SolveResult final_res = solver.solve({});
  record_stats();
  if (final_res != SolveResult::kSat) {
    // kUnsat can only mean the budget logic interfered or the locking is
    // inconsistent; report failure honestly.
    result.budget_exhausted = (final_res == SolveResult::kUnknown);
    result.seconds = timer.elapsed_seconds();
    return result;
  }
  result.recovered_key.resize(key_bits);
  for (std::size_t b = 0; b < key_bits; ++b) {
    result.recovered_key[b] = solver.model_value(enc1.key_var[b]);
  }

  // Verify functional correctness of the recovered key with a fresh miter.
  result.success =
      sat::check_equivalent(locked, result.recovered_key, oracle, Key{});
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace autolock::attack
