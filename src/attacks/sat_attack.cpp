#include "attacks/sat_attack.hpp"

#include <stdexcept>
#include <utility>

#include "sat/backend.hpp"
#include "sat/cnf.hpp"
#include "sat/preprocess.hpp"
#include "util/timer.hpp"

namespace autolock::attack {

using netlist::Key;
using netlist::Netlist;
using netlist::Simulator;
using sat::Encoding;
using sat::Lit;
using sat::make_lit;
using sat::SolveResult;
using sat::Var;

SatAttack::SatAttack(SatAttackConfig config) : config_(std::move(config)) {}

SatAttackResult SatAttack::attack(const Netlist& locked,
                                  const Netlist& oracle) const {
  util::Timer timer;
  SatAttackResult result;

  if (!oracle.key_inputs().empty()) {
    throw std::invalid_argument(
        "SatAttack: oracle has key inputs — a locked netlist is not an "
        "oracle (its simulation would run under an arbitrary key)");
  }
  if (locked.primary_inputs().size() != oracle.primary_inputs().size() ||
      locked.outputs().size() != oracle.outputs().size()) {
    throw std::invalid_argument("SatAttack: interface mismatch");
  }

  const auto key_nodes = locked.key_inputs();
  const std::size_t key_bits = key_nodes.size();
  if (key_bits == 0) {
    result.success = true;
    result.seconds = timer.elapsed_seconds();
    return result;
  }

  const Simulator oracle_sim(oracle);

  sat::Solver solver;
  if (config_.conflict_budget != 0) {
    solver.set_conflict_budget(config_.conflict_budget);
  }

  // One growing formula for the whole attack: two copies of the locked
  // circuit sharing primary inputs with independent key sets K1/K2, the
  // miter over them, and (appended per iteration) every DIP's IO
  // constraints. The miter is attached by ASSUMPTION, never as a clause,
  // so the final "find a consistent key" solve and the canonicalization
  // solves reuse the same solver — learnt clauses and VSIDS state survive
  // across all of it.
  //
  // In cone-template mode the second copy shares the key-independent
  // remainder with the first (it is identical in both), so the initial
  // miter grows by one key cone instead of one whole circuit — every DIP
  // search then propagates a much smaller formula. The full-copy baseline
  // keeps the classic two-full-copies miter.
  sat::ConeTemplate cone(locked);
  const Encoding enc1 = sat::encode_netlist(solver, locked);
  const Encoding enc2 =
      config_.dip_encoding == DipEncoding::kConeTemplate
          ? cone.encode_shared_copy(solver, enc1)
          : sat::encode_netlist(solver, locked, enc1.primary_input_var,
                                std::nullopt);
  std::vector<Var> pi_vars = enc1.primary_input_var;
  std::vector<Var> key1_vars = enc1.key_var;
  std::vector<Var> key2_vars = enc2.key_var;
  Var miter_var = sat::make_miter(solver, enc1, enc2);

  // Optional phase-2 preprocessing of the initial miter formula. The
  // attack's interface variables (DIP extraction reads PI models, IO
  // constraints reference key variables, the loop assumes the miter) are
  // frozen so elimination cannot remove them; a frozen variable the
  // preprocessor *fixed* at level 0 is re-materialized as a fresh pinned
  // variable, which keeps every downstream path uniform.
  if (config_.preprocess.enabled) {
    std::vector<Var> frozen;
    frozen.reserve(pi_vars.size() + 2 * key_bits + 1);
    frozen.insert(frozen.end(), pi_vars.begin(), pi_vars.end());
    frozen.insert(frozen.end(), key1_vars.begin(), key1_vars.end());
    frozen.insert(frozen.end(), key2_vars.begin(), key2_vars.end());
    frozen.push_back(miter_var);

    sat::Preprocessor pre(config_.preprocess);
    const bool feasible = pre.run(solver.export_cnf(), frozen);
    sat::Solver simplified;
    if (config_.conflict_budget != 0) {
      simplified.set_conflict_budget(config_.conflict_budget);
    }
    if (!feasible || !pre.load_into(simplified)) {
      // The raw miter formula is satisfiable by construction (any key
      // pair is a model), so this is unreachable short of a preprocessor
      // defect; report honestly rather than solving on a dead formula.
      result.infeasible = true;
      result.seconds = timer.elapsed_seconds();
      return result;
    }
    solver = std::move(simplified);
    const auto materialize = [&](Var original) {
      const Var mapped = pre.map(original);
      if (mapped >= 0) return mapped;
      const Var fresh = solver.new_var();  // frozen ⇒ mapped or fixed
      solver.add_clause(make_lit(fresh, pre.fixed_value(original) != 1));
      return fresh;
    };
    for (Var& v : pi_vars) v = materialize(v);
    for (Var& v : key1_vars) v = materialize(v);
    for (Var& v : key2_vars) v = materialize(v);
    miter_var = materialize(miter_var);
  }
  const Lit miter_lit = make_lit(miter_var, false);

  const std::size_t primary_count = pi_vars.size();

  auto record_stats = [&] {
    const sat::Solver::Stats& stats = solver.stats();
    result.total_conflicts = stats.conflicts;
    result.total_decisions = stats.decisions;
    result.total_propagations = stats.propagations;
    result.gc_runs = stats.gc_runs;
    result.db_reductions = stats.db_reductions;
    result.peak_arena_bytes = stats.peak_arena_bytes;
    result.mean_lbd = stats.mean_lbd();
  };
  auto finish = [&](SatAttackResult&& r) {
    record_stats();
    r.seconds = timer.elapsed_seconds();
    return std::move(r);
  };

  for (;;) {
    if (config_.max_iterations != 0 &&
        result.dip_iterations >= config_.max_iterations) {
      result.budget_exhausted = true;
      return finish(std::move(result));
    }
    const std::uint64_t vars_before = solver.num_vars();
    const std::uint64_t clauses_before = solver.num_clauses();
    const std::uint64_t conflicts_before = solver.stats().conflicts;

    const SolveResult res = solver.solve({miter_lit});
    if (res == SolveResult::kUnknown) {
      result.budget_exhausted = true;
      return finish(std::move(result));
    }
    if (res == SolveResult::kUnsat) break;  // no DIP remains

    // Extract the DIP and query the oracle.
    ++result.dip_iterations;
    std::vector<bool> dip(primary_count);
    for (std::size_t i = 0; i < primary_count; ++i) {
      dip[i] = solver.model_value(pi_vars[i]);
    }
    const std::vector<bool> response = oracle_sim.run_single(dip, Key{});

    // Append the IO constraint (both copies must map dip -> response).
    bool consistent = true;
    if (config_.dip_encoding == DipEncoding::kConeTemplate) {
      consistent = cone.bind_dip(dip, response) &&
                   cone.encode_copy(solver, key1_vars) &&
                   cone.encode_copy(solver, key2_vars);
    } else {
      // Baseline: two fresh pinned copies of the whole circuit. The DIP
      // inputs are pinned as level-0 facts BEFORE each copy is encoded,
      // so add_clause's level-0 simplification constant-folds the input
      // cones while encoding.
      for (const auto& key_vars : {key1_vars, key2_vars}) {
        const Encoding pinned = sat::encode_netlist(
            solver, locked, sat::pin_constants(solver, dip), key_vars);
        for (std::size_t o = 0; o < pinned.output_var.size(); ++o) {
          consistent = solver.add_clause(make_lit(pinned.output_var[o],
                                                  !response[o])) &&
                       consistent;
        }
      }
      consistent = consistent && solver.okay();
    }
    result.iterations.push_back(
        {solver.num_vars() - vars_before,
         solver.num_clauses() - clauses_before, solver.stats().arena_bytes,
         solver.stats().conflicts - conflicts_before});
    if (!consistent) {
      // A response no key can produce, or IO constraints UNSAT at level
      // 0: the oracle is not a completion of this locked circuit. Stop
      // instead of looping on a dead solver.
      result.infeasible = true;
      return finish(std::move(result));
    }
  }

  // Any key consistent with all IO constraints is correct. Solve without
  // the miter assumption to obtain one.
  const SolveResult final_res = solver.solve({});
  if (final_res != SolveResult::kSat) {
    if (final_res == SolveResult::kUnknown) {
      result.budget_exhausted = true;
    } else {
      // UNSAT: no key satisfies the recorded IO pairs at all.
      result.infeasible = true;
    }
    return finish(std::move(result));
  }
  result.recovered_key.resize(key_bits);
  for (std::size_t b = 0; b < key_bits; ++b) {
    result.recovered_key[b] = solver.model_value(key1_vars[b]);
  }

  // Canonicalize: walk the key bits most-significant-first, greedily
  // forcing each to 0 when some consistent key allows it. Every query is
  // an assumption solve on the warm solver. A kUnknown (conflict budget)
  // aborts canonicalization but keeps the (valid) witness key.
  if (config_.canonicalize_key) {
    std::vector<Lit> prefix;
    prefix.reserve(key_bits);
    for (std::size_t b = 0; b < key_bits; ++b) {
      if (!result.recovered_key[b]) {
        // The current witness model already has this bit at 0.
        prefix.push_back(make_lit(key1_vars[b], true));
        continue;
      }
      prefix.push_back(make_lit(key1_vars[b], true));  // try 0
      const SolveResult bit_res = solver.solve(prefix);
      if (bit_res == SolveResult::kSat) {
        // Adopt the new witness: this bit drops to 0 and the undecided
        // suffix must be re-read from the new model.
        for (std::size_t j = b; j < key_bits; ++j) {
          result.recovered_key[j] = solver.model_value(key1_vars[j]);
        }
      } else if (bit_res == SolveResult::kUnsat) {
        prefix.back() = make_lit(key1_vars[b], false);  // forced to 1
      } else {
        prefix.pop_back();  // budget: keep the witness key as-is
        break;
      }
    }
  }

  // Verify functional correctness of the recovered key with a fresh
  // miter. With a portfolio command, the in-tree solver races the
  // external one — this is the only solve whose model is never read, so
  // racing cannot perturb the (deterministic) trajectory.
  if (!config_.portfolio_command.empty()) {
    sat::Portfolio portfolio;
    portfolio.add(sat::CdclBackend{});
    portfolio.add(
        sat::DimacsSubprocessBackend(config_.portfolio_command, "external"));
    const sat::BackendResult verdict = portfolio.solve(
        sat::export_equivalence_cnf(locked, result.recovered_key, oracle,
                                    Key{}),
        {}, config_.pool);
    result.verify_backend = verdict.backend;
    result.success = verdict.result == SolveResult::kUnsat;
    result.budget_exhausted = result.budget_exhausted ||
                              verdict.result == SolveResult::kUnknown;
  } else {
    sat::EquivCheckOptions options;
    options.preprocess = config_.preprocess;
    result.verify_backend = "cdcl";
    result.success =
        sat::check_equivalent(locked, result.recovered_key, oracle, Key{},
                              options);
  }
  return finish(std::move(result));
}

}  // namespace autolock::attack
