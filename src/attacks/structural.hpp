// Structural link predictor — a fast, hand-featured surrogate for MuxLink.
//
// Logistic regression over classic link-prediction features (common
// neighbours, Jaccard, Adamic-Adar, degrees, preferential attachment, gate
// type compatibility). Roughly two orders of magnitude cheaper than the GNN,
// which makes it useful as (a) an inner-loop fitness proxy for large GA runs
// and (b) an independent second attack vector for multi-objective search
// (the paper's research-plan item 3).
//
// Emits the same MuxLinkResult shape as the GNN attack so scoring and the
// GA fitness plumbing are shared.
#pragma once

#include <cstdint>

#include "attacks/attack_graph.hpp"
#include "attacks/muxlink.hpp"
#include "netlist/netlist.hpp"

namespace autolock::attack {

struct StructuralPredictorConfig {
  std::size_t epochs = 40;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t max_train_links = 4000;
  double decision_threshold = 0.05;
  std::uint64_t seed = 0x57A7ULL;
};

class StructuralLinkPredictor {
 public:
  explicit StructuralLinkPredictor(StructuralPredictorConfig config = {});

  MuxLinkResult attack(const netlist::Netlist& locked) const;

  /// Scratch-reusing variant for evaluation loops; bit-identical results.
  MuxLinkResult attack(const netlist::Netlist& locked,
                       AttackScratch& scratch) const;

  MuxLinkScore run(const lock::LockedDesign& design) const {
    return MuxLinkAttack::score(attack(design.netlist), design.key);
  }

  MuxLinkScore run(const lock::LockedDesign& design,
                   AttackScratch& scratch) const {
    return MuxLinkAttack::score(attack(design.netlist, scratch), design.key);
  }

  const StructuralPredictorConfig& config() const noexcept { return config_; }

  /// Number of features per candidate pair (exposed for tests).
  static constexpr std::size_t kPairFeatureDim = 10;

 private:
  StructuralPredictorConfig config_;
};

}  // namespace autolock::attack
