#include "attacks/muxlink.hpp"

#include <algorithm>
#include <cmath>

#include "attacks/attack_scratch.hpp"
#include "util/rng.hpp"

namespace autolock::attack {

using netlist::NodeId;

MuxLinkAttack::MuxLinkAttack(MuxLinkConfig config) : config_(config) {}

MuxLinkResult MuxLinkAttack::attack(const netlist::Netlist& locked) const {
  AttackScratch scratch;
  return attack(locked, scratch);
}

MuxLinkResult MuxLinkAttack::attack(const netlist::Netlist& locked,
                                    AttackScratch& scratch) const {
  MuxLinkResult result;
  scratch.graph.build(locked);
  const AttackGraph& graph = scratch.graph;
  if (graph.problems().empty()) return result;

  util::Rng rng(config_.seed ^ (locked.size() * 0x9E37ULL));

  // ---- assemble the self-supervised training set ---------------------------
  std::vector<CandidateLink>& positives = scratch.positives;
  positives = graph.known_links();
  if (positives.size() > config_.max_train_links) {
    rng.shuffle(positives);
    positives.resize(config_.max_train_links);
  }

  // Present nodes, split into "possible drivers" (anything present) and
  // "possible sinks" (present gates with fanins) so negatives share the
  // directional shape of positives.
  std::vector<NodeId>& present_nodes = scratch.present_nodes;
  std::vector<NodeId>& present_sinks = scratch.present_sinks;
  present_nodes.clear();
  present_sinks.clear();
  for (NodeId v = 0; v < locked.size(); ++v) {
    if (!graph.in_graph(v)) continue;
    present_nodes.push_back(v);
    if (!locked.node(v).fanins.empty()) present_sinks.push_back(v);
  }
  if (present_nodes.size() < 4 || present_sinks.empty()) return result;

  auto is_adjacent = [&](NodeId a, NodeId b) {
    const auto list = graph.neighbors(a);
    return std::binary_search(list.begin(), list.end(), b);
  };

  // Negatives: half uniform non-links, half *hard* negatives — a false
  // driver drawn from the sink's 2..3-hop neighbourhood, which is exactly
  // the shape of the wrong MUX candidate the attack must reject at
  // inference time.
  auto sample_hard_negative = [&](CandidateLink& out) {
    const NodeId v = present_sinks[rng.next_below(present_sinks.size())];
    // Bounded BFS to 3 hops; visited marks are epoch-stamped, so this
    // allocates nothing once the scratch is warm.
    std::vector<NodeId>& ring = scratch.ring;
    std::vector<NodeId>& frontier = scratch.frontier;
    std::vector<NodeId>& next = scratch.next_frontier;
    ring.clear();
    frontier.clear();
    frontier.push_back(v);
    scratch.seen.begin_epoch(locked.size());
    scratch.seen.mark(v);
    for (int hop = 1; hop <= 3; ++hop) {
      next.clear();
      for (const NodeId x : frontier) {
        for (const NodeId y : graph.neighbors(x)) {
          if (!scratch.seen.try_mark(y)) continue;
          next.push_back(y);
          if (hop >= 2) ring.push_back(y);  // distance 2..3: non-adjacent
        }
      }
      std::swap(frontier, next);
      if (ring.size() > 64) break;
    }
    if (ring.empty()) return false;
    out = CandidateLink{ring[rng.next_below(ring.size())], v};
    return true;
  };

  std::vector<CandidateLink>& negatives = scratch.negatives;
  negatives.clear();
  negatives.reserve(positives.size());
  std::size_t guard = 0;
  while (negatives.size() < positives.size() &&
         guard < 100 * positives.size() + 1000) {
    ++guard;
    if (negatives.size() % 2 == 0) {
      CandidateLink hard;
      if (sample_hard_negative(hard)) {
        negatives.push_back(hard);
        continue;
      }
    }
    const NodeId u = present_nodes[rng.next_below(present_nodes.size())];
    const NodeId v = present_sinks[rng.next_below(present_sinks.size())];
    if (u == v || is_adjacent(u, v)) continue;
    negatives.push_back(CandidateLink{u, v});
  }

  // Assemble training samples into the scratch arena: slots (and their
  // adjacency/feature buffers) are reused across designs and epochs instead
  // of building one fresh Subgraph per sample. Slots beyond `sample_count`
  // may hold stale data from a larger previous design; the training order
  // below never indexes them.
  std::vector<Subgraph>& samples = scratch.train_samples;
  const std::size_t sample_count = positives.size() + negatives.size();
  if (samples.size() < sample_count) samples.resize(sample_count);
  std::size_t next_sample = 0;
  for (const auto& link : positives) {
    Subgraph& sub = samples[next_sample++];
    extract_subgraph_into(graph, link.u, link.v, config_.subgraph,
                          scratch.subgraph, sub);
    sub.label = 1.0;
  }
  for (const auto& link : negatives) {
    Subgraph& sub = samples[next_sample++];
    extract_subgraph_into(graph, link.u, link.v, config_.subgraph,
                          scratch.subgraph, sub);
    sub.label = 0.0;
  }
  result.train_samples = sample_count;

  // ---- train ---------------------------------------------------------------
  const std::size_t ensemble_size = std::max<std::size_t>(config_.ensemble, 1);
  std::vector<Gnn> models;
  models.reserve(ensemble_size);
  for (std::size_t m = 0; m < ensemble_size; ++m) {
    models.emplace_back(config_.gnn, config_.seed ^ 0x517EULL ^ (m * 7919));
  }
  std::vector<std::size_t>& order = scratch.order;
  order.resize(sample_count);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double loss = 0.0;
    for (Gnn& model : models) {
      rng.shuffle(order);
      loss += model.train_epoch(samples, order, scratch.gnn);
    }
    loss /= static_cast<double>(ensemble_size);
    if (epoch == 0) result.first_epoch_loss = loss;
    result.last_epoch_loss = loss;
  }

  // ---- decide every key bit -------------------------------------------------
  int max_bit = -1;
  for (const auto& problem : graph.problems()) {
    max_bit = std::max(max_bit, problem.key_bit_index);
  }
  result.predicted_bits.assign(static_cast<std::size_t>(max_bit) + 1, 0);
  result.margins.assign(static_cast<std::size_t>(max_bit) + 1, 0.0);
  result.thresholded_bits.assign(static_cast<std::size_t>(max_bit) + 1, -1);
  result.bit_attacked.assign(static_cast<std::size_t>(max_bit) + 1, 0);

  for (const auto& problem : graph.problems()) {
    auto mean_prob = [&](const std::vector<CandidateLink>& links) {
      double sum = 0.0;
      for (const auto& link : links) {
        Subgraph& sub = scratch.inference_subgraph;
        extract_subgraph_into(graph, link.u, link.v, config_.subgraph,
                              scratch.subgraph, sub);
        double p = 0.0;
        for (const Gnn& model : models) p += model.predict(sub, scratch.gnn);
        sum += p / static_cast<double>(models.size());
      }
      return links.empty() ? 0.5 : sum / static_cast<double>(links.size());
    };
    const double p0 = mean_prob(problem.if_zero);
    const double p1 = mean_prob(problem.if_one);
    const int bit = problem.key_bit_index;
    const int decision = p1 > p0 ? 1 : 0;
    const double margin = std::abs(p1 - p0);
    result.predicted_bits[bit] = decision;
    result.margins[bit] = margin;
    result.thresholded_bits[bit] =
        margin >= config_.decision_threshold ? decision : -1;
    result.bit_attacked[bit] = 1;
  }
  return result;
}

MuxLinkScore MuxLinkAttack::score(const MuxLinkResult& result,
                                  const netlist::Key& correct_key) {
  MuxLinkScore score;
  score.key_bits = correct_key.size();
  if (correct_key.empty()) return score;

  double correct = 0.0;
  std::size_t attacked = 0;
  std::size_t decided = 0;
  std::size_t decided_correct = 0;
  for (std::size_t bit = 0; bit < correct_key.size(); ++bit) {
    // A bit without a MUX-link hypothesis (non-MUX key gate, or beyond the
    // attacked range) scores as a coin flip: crediting the forced-0 default
    // would reward the attack for key bits it never examined. Results from
    // older serializations may lack the mask; fall back to "has a
    // prediction slot" so hand-built results keep their semantics.
    const bool bit_attacked =
        result.bit_attacked.empty()
            ? bit < result.predicted_bits.size()
            : bit < result.bit_attacked.size() && result.bit_attacked[bit] != 0;
    if (!bit_attacked) {
      correct += 0.5;
      continue;
    }
    ++attacked;
    const int truth = correct_key[bit] ? 1 : 0;
    const int forced =
        bit < result.predicted_bits.size() ? result.predicted_bits[bit] : 0;
    if (forced == truth) correct += 1.0;
    const int soft =
        bit < result.thresholded_bits.size() ? result.thresholded_bits[bit] : -1;
    if (soft != -1) {
      ++decided;
      if (soft == truth) ++decided_correct;
    }
  }
  score.accuracy = correct / static_cast<double>(correct_key.size());
  score.attacked_fraction =
      static_cast<double>(attacked) / static_cast<double>(correct_key.size());
  score.decided_fraction =
      static_cast<double>(decided) / static_cast<double>(correct_key.size());
  score.precision = decided == 0 ? 0.0
                                 : static_cast<double>(decided_correct) /
                                       static_cast<double>(decided);
  return score;
}

}  // namespace autolock::attack
