#include "attacks/structural.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "attacks/attack_scratch.hpp"
#include "netlist/analysis.hpp"
#include "util/rng.hpp"

namespace autolock::attack {

using netlist::NodeId;

namespace {

std::array<double, StructuralLinkPredictor::kPairFeatureDim> pair_features(
    const AttackGraph& graph, const std::vector<std::size_t>& levels,
    NodeId u, NodeId v) {
  const auto nu = graph.neighbors(u);
  const auto nv = graph.neighbors(v);

  double common = 0.0;
  double adamic_adar = 0.0;
  {
    auto iu = nu.begin();
    auto iv = nv.begin();
    while (iu != nu.end() && iv != nv.end()) {
      if (*iu < *iv) {
        ++iu;
      } else if (*iv < *iu) {
        ++iv;
      } else {
        common += 1.0;
        const double degree = static_cast<double>(graph.degree(*iu));
        if (degree > 1.0) adamic_adar += 1.0 / std::log(degree);
        ++iu;
        ++iv;
      }
    }
  }
  const double union_size =
      static_cast<double>(nu.size() + nv.size()) - common;
  const double jaccard = union_size > 0.0 ? common / union_size : 0.0;

  // Gate-type compatibility: does v already have a fanin with u's type?
  const auto& locked = graph.locked();
  const auto u_type = locked.node(u).type;
  double type_match = 0.0;
  for (NodeId fanin : locked.node(v).fanins) {
    if (!graph.in_graph(fanin)) continue;
    if (locked.node(fanin).type == u_type) {
      type_match = 1.0;
      break;
    }
  }

  // Logic-level relationship: a real wire runs from a lower-level driver to
  // a higher-level sink, usually adjacent levels. This is the strongest
  // direction-aware cue available without learning on subgraphs.
  const double dlevel = static_cast<double>(levels[v]) -
                        static_cast<double>(levels[u]);
  const double dlevel_clamped = std::clamp(dlevel, -8.0, 8.0) / 8.0;
  const double plausible_level = (dlevel >= 1.0 && dlevel <= 3.0) ? 1.0 : 0.0;

  return {
      common,
      jaccard,
      adamic_adar,
      std::log1p(static_cast<double>(nu.size())),
      std::log1p(static_cast<double>(nv.size())),
      std::log1p(static_cast<double>(nu.size()) *
                 static_cast<double>(nv.size())),
      type_match,
      dlevel_clamped,
      plausible_level,
      1.0,  // bias
  };
}

double predict_prob(
    const std::array<double, StructuralLinkPredictor::kPairFeatureDim>& x,
    const std::array<double, StructuralLinkPredictor::kPairFeatureDim>& w) {
  double z = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) z += x[i] * w[i];
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace

StructuralLinkPredictor::StructuralLinkPredictor(
    StructuralPredictorConfig config)
    : config_(config) {}

MuxLinkResult StructuralLinkPredictor::attack(
    const netlist::Netlist& locked) const {
  AttackScratch scratch;
  return attack(locked, scratch);
}

MuxLinkResult StructuralLinkPredictor::attack(const netlist::Netlist& locked,
                                              AttackScratch& scratch) const {
  MuxLinkResult result;
  scratch.graph.build(locked);
  const AttackGraph& graph = scratch.graph;
  if (graph.problems().empty()) return result;

  util::Rng rng(config_.seed ^ (locked.size() * 0xC0FFEEULL));
  netlist::node_levels_into(locked, scratch.levels);
  const std::vector<std::size_t>& levels = scratch.levels;

  std::vector<CandidateLink>& positives = scratch.positives;
  positives = graph.known_links();
  if (positives.size() > config_.max_train_links) {
    rng.shuffle(positives);
    positives.resize(config_.max_train_links);
  }
  std::vector<NodeId>& present_nodes = scratch.present_nodes;
  std::vector<NodeId>& present_sinks = scratch.present_sinks;
  present_nodes.clear();
  present_sinks.clear();
  for (NodeId v = 0; v < locked.size(); ++v) {
    if (!graph.in_graph(v)) continue;
    present_nodes.push_back(v);
    if (!locked.node(v).fanins.empty()) present_sinks.push_back(v);
  }
  if (present_nodes.size() < 4 || present_sinks.empty()) return result;

  // Mirror the GNN attack's negative mix: half uniform, half hard
  // (near-the-sink) negatives — see muxlink.cpp for rationale.
  auto sample_hard_negative = [&](CandidateLink& out) {
    const NodeId v = present_sinks[rng.next_below(present_sinks.size())];
    std::vector<NodeId>& ring = scratch.ring;
    std::vector<NodeId>& frontier = scratch.frontier;
    std::vector<NodeId>& next = scratch.next_frontier;
    ring.clear();
    frontier.clear();
    frontier.push_back(v);
    scratch.seen.begin_epoch(locked.size());
    scratch.seen.mark(v);
    for (int hop = 1; hop <= 3; ++hop) {
      next.clear();
      for (const NodeId x : frontier) {
        for (const NodeId y : graph.neighbors(x)) {
          if (!scratch.seen.try_mark(y)) continue;
          next.push_back(y);
          if (hop >= 2) ring.push_back(y);
        }
      }
      std::swap(frontier, next);
      if (ring.size() > 64) break;
    }
    if (ring.empty()) return false;
    out = CandidateLink{ring[rng.next_below(ring.size())], v};
    return true;
  };

  std::vector<CandidateLink>& negatives = scratch.negatives;
  negatives.clear();
  std::size_t guard = 0;
  while (negatives.size() < positives.size() &&
         guard < 100 * positives.size() + 1000) {
    ++guard;
    if (negatives.size() % 2 == 0) {
      CandidateLink hard;
      if (sample_hard_negative(hard)) {
        negatives.push_back(hard);
        continue;
      }
    }
    const NodeId u = present_nodes[rng.next_below(present_nodes.size())];
    const NodeId v = present_sinks[rng.next_below(present_sinks.size())];
    if (u == v) continue;
    const auto nu = graph.neighbors(u);
    if (std::binary_search(nu.begin(), nu.end(), v)) {
      continue;
    }
    negatives.push_back(CandidateLink{u, v});
  }

  struct Sample {
    std::array<double, kPairFeatureDim> x;
    double y;
  };
  std::vector<Sample> samples;
  samples.reserve(positives.size() + negatives.size());
  for (const auto& link : positives) {
    samples.push_back({pair_features(graph, levels, link.u, link.v), 1.0});
  }
  for (const auto& link : negatives) {
    samples.push_back({pair_features(graph, levels, link.u, link.v), 0.0});
  }
  result.train_samples = samples.size();

  std::array<double, kPairFeatureDim> w{};
  std::vector<std::size_t>& order = scratch.order;
  order.resize(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double loss = 0.0;
    for (std::size_t idx : order) {
      const Sample& sample = samples[idx];
      const double p = predict_prob(sample.x, w);
      const double pc = std::clamp(p, 1e-9, 1.0 - 1e-9);
      loss += -(sample.y * std::log(pc) + (1.0 - sample.y) * std::log(1.0 - pc));
      const double err = p - sample.y;
      for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] -= config_.learning_rate *
                (err * sample.x[i] + config_.l2 * w[i]);
      }
    }
    loss /= static_cast<double>(samples.size());
    if (epoch == 0) result.first_epoch_loss = loss;
    result.last_epoch_loss = loss;
  }

  int max_bit = -1;
  for (const auto& problem : graph.problems()) {
    max_bit = std::max(max_bit, problem.key_bit_index);
  }
  result.predicted_bits.assign(static_cast<std::size_t>(max_bit) + 1, 0);
  result.margins.assign(static_cast<std::size_t>(max_bit) + 1, 0.0);
  result.thresholded_bits.assign(static_cast<std::size_t>(max_bit) + 1, -1);
  result.bit_attacked.assign(static_cast<std::size_t>(max_bit) + 1, 0);

  for (const auto& problem : graph.problems()) {
    auto mean_prob = [&](const std::vector<CandidateLink>& links) {
      double sum = 0.0;
      for (const auto& link : links) {
        sum += predict_prob(pair_features(graph, levels, link.u, link.v), w);
      }
      return links.empty() ? 0.5 : sum / static_cast<double>(links.size());
    };
    const double p0 = mean_prob(problem.if_zero);
    const double p1 = mean_prob(problem.if_one);
    const int bit = problem.key_bit_index;
    const int decision = p1 > p0 ? 1 : 0;
    const double margin = std::abs(p1 - p0);
    result.predicted_bits[bit] = decision;
    result.margins[bit] = margin;
    result.thresholded_bits[bit] =
        margin >= config_.decision_threshold ? decision : -1;
    result.bit_attacked[bit] = 1;
  }
  return result;
}

}  // namespace autolock::attack
