#include "attacks/attack_graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace autolock::attack {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

AttackGraph::AttackGraph(const Netlist& locked) : locked_(&locked) {
  const std::size_t n = locked.size();
  present_.assign(n, true);

  // Identify key inputs and key-MUX gates (MUX whose select is a key input).
  std::vector<bool> is_key_mux(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = locked.node(v);
    if (node.type == GateType::kInput && node.is_key_input) {
      present_[v] = false;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = locked.node(v);
    if (node.type == GateType::kMux && !node.fanins.empty()) {
      const auto& sel = locked.node(node.fanins[0]);
      if (sel.type == GateType::kInput && sel.is_key_input) {
        is_key_mux[v] = true;
        present_[v] = false;
      }
    }
  }

  // Adjacency + positives over present nodes only.
  adjacency_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (!present_[v]) continue;
    for (NodeId fanin : locked.node(v).fanins) {
      if (!present_[fanin]) continue;
      adjacency_[v].push_back(fanin);
      adjacency_[fanin].push_back(v);
      known_links_.push_back(CandidateLink{fanin, v});
    }
  }
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  std::sort(known_links_.begin(), known_links_.end(),
            [](const CandidateLink& a, const CandidateLink& b) {
              return a.u < b.u || (a.u == b.u && a.v < b.v);
            });
  known_links_.erase(
      std::unique(known_links_.begin(), known_links_.end(),
                  [](const CandidateLink& a, const CandidateLink& b) {
                    return a.u == b.u && a.v == b.v;
                  }),
      known_links_.end());

  // Decision problems: group key-MUXes by their key input's bit index.
  const auto& fanouts = locked.fanouts();
  std::map<int, KeyBitProblem> by_bit;
  const auto key_nodes = locked.key_inputs();
  std::vector<int> bit_of_node(n, -1);
  for (std::size_t i = 0; i < key_nodes.size(); ++i) {
    bit_of_node[key_nodes[i]] = static_cast<int>(i);
  }
  for (NodeId m = 0; m < n; ++m) {
    if (!is_key_mux[m]) continue;
    const auto& mux = locked.node(m);
    const int bit = bit_of_node[mux.fanins[0]];
    if (bit < 0) {
      throw std::logic_error("AttackGraph: key MUX select is not a key input");
    }
    const NodeId in0 = mux.fanins[1];
    const NodeId in1 = mux.fanins[2];
    if (!present_[in0] || !present_[in1]) {
      // A MUX fed by another key MUX (chained locking). Skip such
      // candidates: MuxLink cannot place them in the clean graph either.
      continue;
    }
    auto& problem = by_bit[bit];
    problem.key_bit_index = bit;
    for (NodeId sink : fanouts[m]) {
      if (!present_[sink]) continue;
      // Key value 0 selects in0 as the true driver of `sink`.
      problem.if_zero.push_back(CandidateLink{in0, sink});
      problem.if_one.push_back(CandidateLink{in1, sink});
    }
  }
  problems_.reserve(by_bit.size());
  for (auto& [bit, problem] : by_bit) {
    if (!problem.if_zero.empty()) problems_.push_back(std::move(problem));
  }
}

}  // namespace autolock::attack
