#include "attacks/attack_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace autolock::attack {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

void AttackGraph::build(const Netlist& locked) {
  locked_ = &locked;
  const std::size_t n = locked.size();
  present_.assign(n, true);

  // Identify key inputs (with their bit index = position among key inputs
  // in creation order) and key-MUX gates (MUX whose select is a key input).
  is_key_mux_.assign(n, false);
  bit_of_node_.assign(n, -1);
  int key_bit_count = 0;
  for (const NodeId v : locked.inputs()) {
    const auto& node = locked.node(v);
    if (node.is_key_input) {
      present_[v] = false;
      bit_of_node_[v] = key_bit_count++;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = locked.node(v);
    if (node.type == GateType::kMux && !node.fanins.empty()) {
      const auto& sel = locked.node(node.fanins[0]);
      if (sel.type == GateType::kInput && sel.is_key_input) {
        is_key_mux_[v] = true;
        present_[v] = false;
      }
    }
  }

  // Adjacency (CSR) + positives over present nodes only. Degrees first,
  // then a prefix sum, then edge placement through per-row cursors.
  adj_offsets_.assign(n + 1, 0);
  known_links_.clear();
  for (NodeId v = 0; v < n; ++v) {
    if (!present_[v]) continue;
    for (const NodeId fanin : locked.node(v).fanins) {
      if (!present_[fanin]) continue;
      ++adj_offsets_[v + 1];
      ++adj_offsets_[fanin + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) adj_offsets_[v + 1] += adj_offsets_[v];
  adj_edges_.resize(adj_offsets_[n]);
  cursor_.assign(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    if (!present_[v]) continue;
    for (const NodeId fanin : locked.node(v).fanins) {
      if (!present_[fanin]) continue;
      adj_edges_[cursor_[v]++] = fanin;
      adj_edges_[cursor_[fanin]++] = v;
      known_links_.push_back(CandidateLink{fanin, v});
    }
  }
  // Sort + deduplicate each row, compacting the edge array in place (rows
  // only ever shrink, so the write cursor never overtakes a pending row).
  std::uint32_t write = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto row_begin = adj_edges_.begin() + adj_offsets_[v];
    const auto row_end = adj_edges_.begin() + adj_offsets_[v + 1];
    std::sort(row_begin, row_end);
    const auto unique_end = std::unique(row_begin, row_end);
    const std::uint32_t new_begin = write;
    for (auto it = row_begin; it != unique_end; ++it) adj_edges_[write++] = *it;
    adj_offsets_[v] = new_begin;
  }
  adj_offsets_[n] = write;
  adj_edges_.resize(write);

  std::sort(known_links_.begin(), known_links_.end(),
            [](const CandidateLink& a, const CandidateLink& b) {
              return a.u < b.u || (a.u == b.u && a.v < b.v);
            });
  known_links_.erase(
      std::unique(known_links_.begin(), known_links_.end(),
                  [](const CandidateLink& a, const CandidateLink& b) {
                    return a.u == b.u && a.v == b.v;
                  }),
      known_links_.end());

  // Key-MUX sink rows (ascending, deduplicated — identical content to the
  // netlist's cached fanout rows for these nodes), collected in one
  // ascending pass over every fanin list instead of materializing the full
  // O(V) vector-of-vectors fanout cache just to read the key-MUX rows.
  // Sinks arrive in ascending v order; a mux listed twice in one fanin list
  // is deduplicated by scanning the (tiny) earlier operands.
  mux_slot_.assign(n, -1);
  std::int32_t mux_count = 0;
  for (NodeId m = 0; m < n; ++m) {
    if (is_key_mux_[m]) mux_slot_[m] = mux_count++;
  }
  mux_sink_offsets_.assign(mux_count + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& fi = locked.node(v).fanins;
    for (std::size_t i = 0; i < fi.size(); ++i) {
      const std::int32_t s = mux_slot_[fi[i]];
      if (s < 0) continue;
      bool dup = false;
      for (std::size_t j = 0; j < i && !dup; ++j) dup = fi[j] == fi[i];
      if (!dup) ++mux_sink_offsets_[s + 1];
    }
  }
  for (std::int32_t s = 0; s < mux_count; ++s) {
    mux_sink_offsets_[s + 1] += mux_sink_offsets_[s];
  }
  mux_sink_edges_.resize(mux_sink_offsets_[mux_count]);
  cursor_.assign(mux_sink_offsets_.begin(), mux_sink_offsets_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const auto& fi = locked.node(v).fanins;
    for (std::size_t i = 0; i < fi.size(); ++i) {
      const std::int32_t s = mux_slot_[fi[i]];
      if (s < 0) continue;
      bool dup = false;
      for (std::size_t j = 0; j < i && !dup; ++j) dup = fi[j] == fi[i];
      if (!dup) mux_sink_edges_[cursor_[s]++] = v;
    }
  }

  // Decision problems: group key-MUXes by their key input's bit index into
  // per-bit slots (replacing the historical std::map), then emit non-empty
  // slots in ascending bit order.
  if (slots_.size() < static_cast<std::size_t>(key_bit_count)) {
    slots_.resize(key_bit_count);
  }
  for (auto& slot : slots_) {
    slot.key_bit_index = -1;
    slot.if_zero.clear();
    slot.if_one.clear();
  }
  for (NodeId m = 0; m < n; ++m) {
    if (!is_key_mux_[m]) continue;
    const auto& mux = locked.node(m);
    const int bit = bit_of_node_[mux.fanins[0]];
    if (bit < 0) {
      throw std::logic_error("AttackGraph: key MUX select is not a key input");
    }
    const NodeId in0 = mux.fanins[1];
    const NodeId in1 = mux.fanins[2];
    if (!present_[in0] || !present_[in1]) {
      // A MUX fed by another key MUX (chained locking). Skip such
      // candidates: MuxLink cannot place them in the clean graph either.
      continue;
    }
    auto& problem = slots_[bit];
    problem.key_bit_index = bit;
    const std::int32_t slot = mux_slot_[m];
    for (std::uint32_t e = mux_sink_offsets_[slot];
         e < mux_sink_offsets_[slot + 1]; ++e) {
      const NodeId sink = mux_sink_edges_[e];
      if (!present_[sink]) continue;
      // Key value 0 selects in0 as the true driver of `sink`.
      problem.if_zero.push_back(CandidateLink{in0, sink});
      problem.if_one.push_back(CandidateLink{in1, sink});
    }
  }
  std::size_t emitted = 0;
  for (int bit = 0; bit < key_bit_count; ++bit) {
    auto& slot = slots_[bit];
    if (slot.key_bit_index < 0 || slot.if_zero.empty()) continue;
    if (problems_.size() <= emitted) problems_.emplace_back();
    KeyBitProblem& dst = problems_[emitted++];
    dst.key_bit_index = slot.key_bit_index;
    // Swap rather than move: the slot inherits the previous build's pair
    // storage, so neither side reallocates once the buffers are warm.
    dst.if_zero.swap(slot.if_zero);
    dst.if_one.swap(slot.if_one);
    slot.key_bit_index = -1;
  }
  problems_.resize(emitted);
}

std::vector<std::vector<NodeId>> AttackGraph::adjacency_lists() const {
  std::vector<std::vector<NodeId>> lists(present_.size());
  for (NodeId v = 0; v < present_.size(); ++v) {
    const auto row = neighbors(v);
    lists[v].assign(row.begin(), row.end());
  }
  return lists;
}

}  // namespace autolock::attack
