#include "attacks/features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace autolock::attack {

using netlist::NodeId;

namespace {

/// BFS distances within the subgraph, skipping `blocked` (DRNL's
/// "remove the other endpoint" rule). Unreachable = UINT32_MAX.
std::vector<std::uint32_t> bfs_from(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::uint32_t source, std::uint32_t blocked) {
  std::vector<std::uint32_t> dist(adjacency.size(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::queue<std::uint32_t> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::uint32_t x = queue.front();
    queue.pop();
    for (std::uint32_t y : adjacency[x]) {
      if (y == blocked) continue;
      if (dist[y] != std::numeric_limits<std::uint32_t>::max()) continue;
      dist[y] = dist[x] + 1;
      queue.push(y);
    }
  }
  return dist;
}

}  // namespace

std::vector<std::uint32_t> drnl_labels(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::uint32_t> labels(n, 0);
  if (n < 2) return labels;
  const auto du = bfs_from(adjacency, 0, 1);
  const auto dv = bfs_from(adjacency, 1, 0);
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  labels[0] = 1;
  labels[1] = 1;
  for (std::size_t x = 2; x < n; ++x) {
    if (du[x] == kInf || dv[x] == kInf) {
      labels[x] = 0;  // reachable from at most one endpoint
      continue;
    }
    const std::uint32_t d = du[x] + dv[x];
    const std::uint32_t half = d / 2;
    const std::uint32_t label =
        1 + std::min(du[x], dv[x]) + half * (half + (d % 2) - 1);
    labels[x] = std::min(label, kDrnlCap);
  }
  return labels;
}

Subgraph extract_subgraph(const AttackGraph& graph, NodeId u, NodeId v,
                          const SubgraphConfig& config) {
  SubgraphScratch scratch;
  Subgraph sub;
  extract_subgraph_into(graph, u, v, config, scratch, sub);
  return sub;
}

void extract_subgraph_into(const AttackGraph& graph, NodeId u, NodeId v,
                           const SubgraphConfig& config,
                           SubgraphScratch& scratch, Subgraph& out) {
  const std::size_t graph_nodes = graph.locked().size();

  // Joint BFS from {u, v}; u and v occupy local slots 0 and 1. Membership
  // is epoch-stamped, so local_of entries are only read where marked.
  scratch.member_marks.begin_epoch(graph_nodes);
  if (scratch.local_of.size() < graph_nodes) scratch.local_of.resize(graph_nodes);
  std::vector<NodeId>& members = scratch.members;
  std::vector<std::uint32_t>& hop = scratch.hop;
  members.clear();
  hop.clear();
  auto admit = [&](NodeId x, std::uint32_t h) {
    scratch.member_marks.mark(x);
    scratch.local_of[x] = static_cast<std::uint32_t>(members.size());
    members.push_back(x);
    hop.push_back(h);
  };
  admit(u, 0);
  if (v != u) admit(v, 0);
  for (std::size_t head = 0; head < members.size(); ++head) {
    if (members.size() >= config.max_nodes) break;
    if (hop[head] >= config.hops) continue;
    for (NodeId y : graph.neighbors(members[head])) {
      if (scratch.member_marks.marked(y)) continue;
      admit(y, hop[head] + 1);
      if (members.size() >= config.max_nodes) break;
    }
  }

  // Local adjacency, omitting the (u, v) edge itself.
  const std::size_t n = members.size();
  out.adjacency.resize(n);
  for (auto& row : out.adjacency) row.clear();
  for (std::size_t x = 0; x < n; ++x) {
    for (NodeId y : graph.neighbors(members[x])) {
      if (!scratch.member_marks.marked(y)) continue;
      const std::uint32_t ly = scratch.local_of[y];
      const bool is_target_edge =
          (x == 0 && ly == 1) || (x == 1 && ly == 0);
      if (is_target_edge) continue;
      out.adjacency[x].push_back(ly);
    }
  }

  // Features: one-hot DRNL ++ one-hot gate type ++ normalized degree.
  const auto labels = drnl_labels(out.adjacency);
  out.node_count = n;
  out.features.assign(n * kFeatureDim, 0.0);
  const auto& locked = graph.locked();
  constexpr std::size_t kRoleOffset = (kDrnlCap + 1) + netlist::kGateTypeCount;
  for (std::size_t x = 0; x < n; ++x) {
    double* row = &out.features[x * kFeatureDim];
    row[labels[x]] = 1.0;
    const auto type = locked.node(members[x]).type;
    row[(kDrnlCap + 1) + static_cast<std::size_t>(type)] = 1.0;
    if (x == 0) row[kRoleOffset] = 1.0;      // queried driver endpoint
    if (x == 1) row[kRoleOffset + 1] = 1.0;  // queried sink endpoint
    const double degree = static_cast<double>(graph.degree(members[x]));
    row[kFeatureDim - 1] = std::log1p(degree) / 4.0;
  }
}

}  // namespace autolock::attack
