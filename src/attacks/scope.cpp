#include "attacks/scope.hpp"

#include "attacks/attack_scratch.hpp"
#include "netlist/opt.hpp"

namespace autolock::attack {

namespace {

int decide_from_areas(std::size_t area0, std::size_t area1) {
  // The correct hypothesis synthesizes *smaller* (key gate disappears).
  if (area0 < area1) return 0;
  if (area1 < area0) return 1;
  return -1;
}

}  // namespace

ScopeResult ScopeAttack::attack(const netlist::Netlist& locked) const {
  ScopeResult result;
  const std::size_t key_bits = locked.key_inputs().size();
  result.predicted_bits.reserve(key_bits);
  result.areas.reserve(key_bits);
  for (std::size_t bit = 0; bit < key_bits; ++bit) {
    const auto zero = netlist::optimize_with_key_bit(locked, bit, false);
    const auto one = netlist::optimize_with_key_bit(locked, bit, true);
    const std::size_t area0 = zero.stats().gates;
    const std::size_t area1 = one.stats().gates;
    result.predicted_bits.push_back(decide_from_areas(area0, area1));
    result.areas.emplace_back(area0, area1);
  }
  return result;
}

ScopeResult ScopeAttack::attack(const netlist::Netlist& locked,
                                AttackScratch& scratch) const {
  ScopeResult result;
  const std::size_t key_bits = locked.key_inputs().size();
  result.predicted_bits.reserve(key_bits);
  result.areas.reserve(key_bits);
  for (std::size_t bit = 0; bit < key_bits; ++bit) {
    const std::size_t area0 =
        netlist::optimized_gate_count_with_key_bit(locked, bit, false,
                                                   scratch.opt);
    const std::size_t area1 =
        netlist::optimized_gate_count_with_key_bit(locked, bit, true,
                                                   scratch.opt);
    result.predicted_bits.push_back(decide_from_areas(area0, area1));
    result.areas.emplace_back(area0, area1);
  }
  return result;
}

ScopeScore ScopeAttack::score(const ScopeResult& result,
                              const netlist::Key& correct_key) {
  ScopeScore score;
  score.key_bits = correct_key.size();
  if (correct_key.empty()) return score;
  std::size_t decided = 0;
  std::size_t correct = 0;
  for (std::size_t bit = 0; bit < correct_key.size(); ++bit) {
    const int prediction =
        bit < result.predicted_bits.size() ? result.predicted_bits[bit] : -1;
    if (prediction == -1) continue;
    ++decided;
    if (prediction == (correct_key[bit] ? 1 : 0)) ++correct;
  }
  score.decided_fraction =
      static_cast<double>(decided) / static_cast<double>(correct_key.size());
  score.accuracy_on_decided =
      decided == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(decided);
  score.expected_overall_accuracy =
      (static_cast<double>(correct) +
       0.5 * static_cast<double>(correct_key.size() - decided)) /
      static_cast<double>(correct_key.size());
  return score;
}

}  // namespace autolock::attack
