// A small graph neural network for subgraph (link) classification, written
// from scratch: two mean-aggregation message-passing layers (GraphSAGE
// flavour), mean pooling, a one-hidden-layer MLP head, sigmoid output,
// binary cross-entropy loss, and Adam — all with manual backpropagation.
//
// This is the stand-in for MuxLink's DGCNN (see DESIGN.md §4): same attack
// surface (learned link prediction over enclosing subgraphs), CPU-sized.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/features.hpp"
#include "util/rng.hpp"

namespace autolock::attack {

struct GnnConfig {
  std::size_t input_dim = kFeatureDim;
  std::size_t hidden_dim = 32;
  std::size_t mlp_dim = 16;
  double learning_rate = 5e-3;
  double weight_decay = 1e-5;
  std::size_t batch_size = 32;
};

/// Dense row-major matrix, minimal on purpose.
struct Mat {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  Mat() = default;
  Mat(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}
  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  void zero() { std::fill(data.begin(), data.end(), 0.0); }
};

class Gnn {
 public:
  Gnn(const GnnConfig& config, std::uint64_t seed);

  /// Predicted probability that the subgraph's (0,1) link exists.
  double predict(const Subgraph& sample) const;

  /// One epoch of minibatch Adam over `samples` in the given order
  /// (shuffle outside). Returns mean BCE loss.
  double train_epoch(const std::vector<Subgraph>& samples,
                     const std::vector<std::size_t>& order);

  const GnnConfig& config() const noexcept { return config_; }

 private:
  struct Layer {
    Mat w_self, w_neigh;
    std::vector<double> bias;
  };
  struct AdamState {
    std::vector<double> m, v;
  };
  struct Forward {
    // Cached activations for backprop, one per message-passing layer.
    Mat x;            // input features
    Mat agg0, z1, h1; // layer 1: neighbor mean, pre-activation, activation
    Mat agg1, z2, h2; // layer 2
    std::vector<double> pooled;   // mean-pooled h2
    std::vector<double> mlp_z, mlp_h;  // MLP hidden pre/post activation
    double logit = 0.0;
    double prob = 0.0;
  };

  Forward forward(const Subgraph& sample) const;
  void backward(const Subgraph& sample, const Forward& fwd, double dlogit);
  void adam_step();

  // Parameter/gradient flattening helpers.
  std::vector<std::vector<double>*> param_views();
  std::vector<std::vector<double>*> grad_views();

  GnnConfig config_;
  Layer layer1_, layer2_;
  Mat mlp_w1_;
  std::vector<double> mlp_b1_;
  std::vector<double> mlp_w2_;
  double mlp_b2_ = 0.0;

  // Gradients (same shapes as parameters).
  Layer g_layer1_, g_layer2_;
  Mat g_mlp_w1_;
  std::vector<double> g_mlp_b1_;
  std::vector<double> g_mlp_w2_;
  double g_mlp_b2_ = 0.0;

  std::vector<AdamState> adam_;
  std::uint64_t adam_t_ = 0;
};

}  // namespace autolock::attack
