// A small graph neural network for subgraph (link) classification, written
// from scratch: two mean-aggregation message-passing layers (GraphSAGE
// flavour), mean pooling, a one-hidden-layer MLP head, sigmoid output,
// binary cross-entropy loss, and Adam — all with manual backpropagation.
//
// This is the stand-in for MuxLink's DGCNN (see DESIGN.md §4): same attack
// surface (learned link prediction over enclosing subgraphs), CPU-sized.
//
// The dense work runs through small register-blocked GEMM micro-kernels
// (detail::gemm*) over buffers that live in GnnScratch, so a training epoch
// allocates nothing once the scratch is warm. Every kernel accumulates each
// output element with the reduction loop innermost and ascending — exactly
// the naive triple-loop order — so kernel and naive results are
// bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/features.hpp"
#include "util/rng.hpp"

namespace autolock::attack {

struct GnnConfig {
  std::size_t input_dim = kFeatureDim;
  std::size_t hidden_dim = 32;
  std::size_t mlp_dim = 16;
  double learning_rate = 5e-3;
  double weight_decay = 1e-5;
  std::size_t batch_size = 32;
};

/// Dense row-major matrix, minimal on purpose.
struct Mat {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  Mat() = default;
  Mat(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}
  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  void zero() { std::fill(data.begin(), data.end(), 0.0); }
  /// Reshapes without zeroing; existing capacity is reused. Callers must
  /// overwrite every element (the kernels below always do).
  void reshape(std::size_t r, std::size_t c) {
    rows = r;
    cols = c;
    data.resize(r * c);
  }
};

namespace detail {

// Register-blocked GEMM micro-kernels (row-major, restrict-qualified inside).
// All three keep the reduction loop innermost and ascending per output
// element, so results match a naive triple loop bit-for-bit. Exposed for
// tests and benchmarks.

/// c(m x n) = (or +=) a(m x k) * b(k x n).
void gemm(const double* a, const double* b, double* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate);

/// c(k x n) += a(m x k)^T * d(m x n) (weight-gradient shape; the reduction
/// runs over the m rows, ascending).
void gemm_at(const double* a, const double* d, double* c, std::size_t m,
             std::size_t k, std::size_t n);

/// out(cols x rows) = in(rows x cols)^T. Backward needs a handful of
/// weight-transposed products; an explicit 32x32 transpose (~1% of the GEMM
/// it feeds) keeps every product on the fast row-major kernel instead of a
/// strided-load variant.
void transpose(const double* in, double* out, std::size_t rows,
               std::size_t cols);

}  // namespace detail

/// Reusable per-worker GNN buffers: forward activations, backward
/// temporaries, and a flattened CSR copy of the current sample's adjacency.
/// Lives in AttackScratch so MuxLink's training epochs and inference sweeps
/// allocate nothing once warm. Holds no model or result state — predictions
/// through a fresh scratch and a reused one are bit-identical.
struct GnnScratch {
  // CSR adjacency of the current sample (neighbor list order preserved).
  std::vector<std::uint32_t> adj_offsets;
  std::vector<std::uint32_t> adj_edges;
  // Forward activations, one per message-passing stage.
  Mat x;             // input features
  Mat agg0, z1, h1;  // layer 1: neighbor mean, pre-activation, activation
  Mat agg1, z2, h2;  // layer 2
  std::vector<double> pooled;        // mean-pooled h2
  std::vector<double> mlp_z, mlp_h;  // MLP hidden pre/post activation
  double logit = 0.0;
  double prob = 0.0;
  // Backward temporaries.
  Mat d_h2, d_z2, d_h1, d_agg1, d_z1;
  Mat w_t;  // transposed weight staging for the d_h1/d_agg1 products
  std::vector<double> d_mlp_h, d_mlp_z, d_pooled;
};

class Gnn {
 public:
  Gnn(const GnnConfig& config, std::uint64_t seed);

  /// Predicted probability that the subgraph's (0,1) link exists; all
  /// working buffers come from `scratch`.
  double predict(const Subgraph& sample, GnnScratch& scratch) const;

  /// Allocating convenience (one-shot callers and tests); identical result.
  double predict(const Subgraph& sample) const;

  /// One epoch of minibatch Adam over `samples` in the given order
  /// (shuffle outside). Returns mean BCE loss; all per-sample buffers come
  /// from `scratch`.
  double train_epoch(const std::vector<Subgraph>& samples,
                     const std::vector<std::size_t>& order,
                     GnnScratch& scratch);

  /// Allocating convenience; identical result.
  double train_epoch(const std::vector<Subgraph>& samples,
                     const std::vector<std::size_t>& order);

  const GnnConfig& config() const noexcept { return config_; }

 private:
  struct Layer {
    Mat w_self, w_neigh;
    std::vector<double> bias;
  };
  struct AdamState {
    std::vector<double> m, v;
  };

  /// Fills scratch with the forward pass (logit/prob included).
  void forward(const Subgraph& sample, GnnScratch& scratch) const;
  void backward(const Subgraph& sample, GnnScratch& scratch, double dlogit);
  void adam_step();

  // Parameter/gradient flattening helpers.
  std::vector<std::vector<double>*> param_views();
  std::vector<std::vector<double>*> grad_views();

  GnnConfig config_;
  Layer layer1_, layer2_;
  Mat mlp_w1_;
  std::vector<double> mlp_b1_;
  std::vector<double> mlp_w2_;
  double mlp_b2_ = 0.0;

  // Gradients (same shapes as parameters).
  Layer g_layer1_, g_layer2_;
  Mat g_mlp_w1_;
  std::vector<double> g_mlp_b1_;
  std::vector<double> g_mlp_w2_;
  double g_mlp_b2_ = 0.0;

  std::vector<AdamState> adam_;
  std::uint64_t adam_t_ = 0;
};

}  // namespace autolock::attack
