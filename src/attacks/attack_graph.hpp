// Attacker's view of a MUX-locked netlist.
//
// MuxLink models the locked design as a graph in which every key-controlled
// MUX is *removed*: the attacker knows which gate each MUX feeds (its
// fanout) and which two signals are its candidate drivers (the MUX data
// inputs), and must predict which candidate link is the true one. Key
// inputs and key-MUX nodes therefore do not appear in the graph at all —
// they carry no usable structure by construction of D-MUX-style locking.
//
// This module builds that view from a locked netlist alone (no ground
// truth): the undirected adjacency over non-key nodes, per-node structural
// features, and the list of key-bit decision problems.
//
// The adjacency is stored in CSR form (one offsets array + one flat edge
// array) rather than a vector-of-vectors, and the object is reusable:
// `build()` re-derives the view for a new locked netlist into the existing
// storage, so evaluation loops that attack thousands of candidate designs
// allocate nothing once the buffers are warm. Rows are sorted and
// deduplicated, matching the order the historical list-of-lists
// representation produced (attack RNG trajectories depend on it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace autolock::attack {

/// One candidate link (u, v): "signal u drives gate v".
struct CandidateLink {
  netlist::NodeId u = netlist::kNoNode;
  netlist::NodeId v = netlist::kNoNode;
};

/// The decision problem for one key bit: every key-MUX controlled by that
/// key input contributes one (link-if-0, link-if-1) candidate pair per
/// fanout gate.
struct KeyBitProblem {
  int key_bit_index = -1;
  /// Pairs are aligned: choosing key value 0 asserts all `if_zero` links,
  /// key value 1 asserts all `if_one` links.
  std::vector<CandidateLink> if_zero;
  std::vector<CandidateLink> if_one;
};

class AttackGraph {
 public:
  /// Creates an empty graph; call build() before use. Exists so worker
  /// scratch state can own a reusable instance.
  AttackGraph() = default;

  /// Builds the attacker view. `locked` must contain MUX key-gates whose
  /// select input is a key input (the convention every scheme in this repo
  /// follows). Non-MUX key gates (e.g. RLL XORs) are left in the graph —
  /// MuxLink does not attack them, and their presence mirrors reality.
  explicit AttackGraph(const netlist::Netlist& locked) { build(locked); }

  /// (Re)derives the view for `locked`, reusing all internal storage.
  /// `locked` must outlive the graph (or the next build()).
  void build(const netlist::Netlist& locked);

  const netlist::Netlist& locked() const noexcept { return *locked_; }

  /// True for nodes that exist in the attacker graph (false for key inputs
  /// and key-MUX nodes).
  bool in_graph(netlist::NodeId v) const { return present_[v]; }

  /// Undirected neighbours of `v` (sorted ascending, deduplicated; empty
  /// for absent nodes). Valid until the next build().
  std::span<const netlist::NodeId> neighbors(netlist::NodeId v) const {
    return {adj_edges_.data() + adj_offsets_[v],
            adj_offsets_[v + 1] - adj_offsets_[v]};
  }

  std::size_t degree(netlist::NodeId v) const noexcept {
    return adj_offsets_[v + 1] - adj_offsets_[v];
  }

  /// Materializes the adjacency as a list of lists (identical content to
  /// the pre-CSR representation). Allocates; meant for tests and cold
  /// callers, not the evaluation hot path.
  std::vector<std::vector<netlist::NodeId>> adjacency_lists() const;

  /// All existing directed wires (driver, sink) between present nodes —
  /// the self-supervision positives.
  const std::vector<CandidateLink>& known_links() const noexcept {
    return known_links_;
  }

  /// One decision problem per key bit, sorted by key bit index.
  const std::vector<KeyBitProblem>& problems() const noexcept {
    return problems_;
  }

  std::size_t key_bits() const noexcept { return problems_.size(); }

 private:
  const netlist::Netlist* locked_ = nullptr;
  std::vector<bool> present_;
  std::vector<std::uint32_t> adj_offsets_;  // size() + 1 entries
  std::vector<netlist::NodeId> adj_edges_;
  std::vector<CandidateLink> known_links_;
  std::vector<KeyBitProblem> problems_;
  // Build-time scratch, retained for reuse.
  std::vector<bool> is_key_mux_;
  std::vector<int> bit_of_node_;
  std::vector<std::uint32_t> cursor_;
  std::vector<KeyBitProblem> slots_;
  /// Key-MUX sink CSR (dense slot per key MUX): the deduplicated ascending
  /// gate fanouts of each key MUX, collected in one pass over all fanin
  /// lists — the per-build replacement for materializing the netlist's full
  /// vector-of-vectors fanout cache just to read the key-MUX rows.
  std::vector<std::int32_t> mux_slot_;
  std::vector<std::uint32_t> mux_sink_offsets_;
  std::vector<netlist::NodeId> mux_sink_edges_;
};

}  // namespace autolock::attack
