// Oracle-guided SAT attack (Subramanyan et al., HOST'15), from scratch on
// top of the in-repo CDCL solver.
//
// The attacker holds the locked netlist and black-box access to an unlocked
// chip (the oracle — here, simulation of the original netlist). The attack
// iteratively finds Distinguishing Input Patterns (DIPs): inputs on which
// two candidate keys disagree. Each DIP's oracle response prunes the key
// space by adding IO constraints; when no DIP remains, any key consistent
// with all recorded IO pairs is functionally correct.
//
// In this repo the SAT attack serves the multi-objective extension (the
// AutoLock research plan's "set of distinct attacks"): MUX locking is not
// SAT-resilient by design, so the interesting measurement is attack *effort*
// (DIP iterations, conflicts, time) rather than success.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"

namespace autolock::attack {

struct SatAttackConfig {
  /// Abort after this many DIP iterations (0 = unlimited).
  std::size_t max_iterations = 0;
  /// Per-solve conflict budget (0 = unlimited). When exhausted the attack
  /// reports failure with `budget_exhausted` set.
  std::uint64_t conflict_budget = 0;
};

struct SatAttackResult {
  bool success = false;           // recovered key proven functionally correct
  bool budget_exhausted = false;
  netlist::Key recovered_key;
  std::size_t dip_iterations = 0;
  std::uint64_t total_conflicts = 0;
  std::uint64_t total_decisions = 0;
  std::uint64_t total_propagations = 0;
  // Solver-core internals (sat/clause_allocator.hpp): arena compactions,
  // DB reductions, memory footprint, and mean learnt-clause LBD.
  std::uint64_t gc_runs = 0;
  std::uint64_t db_reductions = 0;
  std::uint64_t peak_arena_bytes = 0;
  double mean_lbd = 0.0;
  double seconds = 0.0;
};

class SatAttack {
 public:
  explicit SatAttack(SatAttackConfig config = {});

  /// Runs the attack. `oracle` is the original (unlocked) netlist; it is
  /// only ever *simulated* (black-box), never encoded into the solver.
  SatAttackResult attack(const netlist::Netlist& locked,
                         const netlist::Netlist& oracle) const;

 private:
  SatAttackConfig config_;
};

}  // namespace autolock::attack
