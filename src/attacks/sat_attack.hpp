// Oracle-guided SAT attack (Subramanyan et al., HOST'15), from scratch on
// top of the in-repo CDCL solver.
//
// The attacker holds the locked netlist and black-box access to an unlocked
// chip (the oracle — here, simulation of the original netlist). The attack
// iteratively finds Distinguishing Input Patterns (DIPs): inputs on which
// two candidate keys disagree. Each DIP's oracle response prunes the key
// space by adding IO constraints; when no DIP remains, any key consistent
// with all recorded IO pairs is functionally correct.
//
// SAT core phase 2 made the loop fully incremental: one growing formula
// holds the miter and every DIP's IO constraints, so learnt clauses and
// VSIDS state carry across iterations, and the default kConeTemplate
// encoding (sat::ConeTemplate) simulates the key-independent logic to
// constants once per DIP instead of re-encoding two full circuit copies.
// The recovered key is canonicalized (lexicographically smallest
// consistent key) so it is a function of the locked/oracle pair alone, not
// of the DIP trajectory or encoding mode.
//
// In this repo the SAT attack serves the multi-objective extension (the
// AutoLock research plan's "set of distinct attacks"): MUX locking is not
// SAT-resilient by design, so the interesting measurement is attack *effort*
// (DIP iterations, conflicts, time) rather than success.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "sat/preprocess.hpp"

namespace autolock::util {
class ThreadPool;
}

namespace autolock::attack {

/// How a DIP's IO constraints enter the growing formula.
enum class DipEncoding {
  /// Encode-once cone template (default): per DIP, key-independent logic
  /// is simulated to constants once (shared by both copies) and only the
  /// key-dependent cone is encoded per copy, with constant folding.
  kConeTemplate,
  /// Per-DIP-copy baseline: two fresh pinned copies of the whole locked
  /// netlist per DIP. Kept for A/B benchmarking (bench_sat_attack races
  /// the two modes) and as the reference the template is tested against.
  kFullCopy,
};

struct SatAttackConfig {
  /// Abort after this many DIP iterations (0 = unlimited).
  std::size_t max_iterations = 0;
  /// Per-solve conflict budget (0 = unlimited). When exhausted the attack
  /// reports failure with `budget_exhausted` set.
  std::uint64_t conflict_budget = 0;
  DipEncoding dip_encoding = DipEncoding::kConeTemplate;
  /// Canonicalize the recovered key to the lexicographically smallest key
  /// consistent with all IO constraints (a few extra assumption solves on
  /// the warm solver). At termination the consistent set equals the
  /// functionally-correct set, so the canonical key is identical across
  /// encoding modes and DIP orders — this is what makes the
  /// incremental-vs-baseline bit-identity check meaningful. When off, the
  /// key is whatever model the final solve happens to produce.
  bool canonicalize_key = true;
  /// When enabled, the initial miter formula is simplified by the
  /// SatELite-style Preprocessor (PI/key/miter variables frozen) before
  /// the DIP loop, and the final verification query is preprocessed too.
  sat::PreprocessConfig preprocess;
  /// External DIMACS solver command template ("{cnf}" is replaced with a
  /// CNF path, e.g. "kissat -q {cnf}") raced against the in-tree solver
  /// on the final verification query — the one solve whose model is never
  /// read, so racing cannot perturb the attack trajectory. Empty: in-tree
  /// solver only.
  std::string portfolio_command;
  /// Pool to race portfolio backends on (borrowed, not owned). Null: the
  /// backends run sequentially, in-tree solver first.
  util::ThreadPool* pool = nullptr;
};

/// Per-DIP-iteration formula growth, surfaced so benches and tests can see
/// the incremental path's footprint (kConeTemplate grows by the key cone,
/// kFullCopy by two whole circuit copies).
struct DipIterationStats {
  std::uint64_t new_vars = 0;     // solver variables added by this DIP
  std::uint64_t new_clauses = 0;  // problem clauses added by this DIP
  std::uint64_t arena_bytes = 0;  // arena footprint after the iteration
  std::uint64_t conflicts = 0;    // conflicts spent finding this DIP
};

struct SatAttackResult {
  bool success = false;           // recovered key proven functionally correct
  bool budget_exhausted = false;
  /// The oracle's IO behaviour is inconsistent with the locked circuit:
  /// some response cannot be produced under ANY key (wrong oracle/locked
  /// pairing, or corrupted responses). Detected either by the cone
  /// template's key-independent output check or by the IO constraints
  /// going UNSAT at level 0 — the loop stops immediately instead of
  /// solving on a dead formula.
  bool infeasible = false;
  netlist::Key recovered_key;
  std::size_t dip_iterations = 0;
  std::uint64_t total_conflicts = 0;
  std::uint64_t total_decisions = 0;
  std::uint64_t total_propagations = 0;
  // Solver-core internals (sat/clause_allocator.hpp): arena compactions,
  // DB reductions, memory footprint, and mean learnt-clause LBD.
  std::uint64_t gc_runs = 0;
  std::uint64_t db_reductions = 0;
  std::uint64_t peak_arena_bytes = 0;
  double mean_lbd = 0.0;
  /// One entry per DIP iteration (empty when the key count is zero).
  std::vector<DipIterationStats> iterations;
  /// Backend that answered the final verification query ("cdcl" unless a
  /// portfolio_command won the race; empty if verification never ran).
  std::string verify_backend;
  double seconds = 0.0;
};

class SatAttack {
 public:
  explicit SatAttack(SatAttackConfig config = {});

  /// Runs the attack. `oracle` is the original (unlocked) netlist; it is
  /// only ever *simulated* (black-box), never encoded into the solver.
  /// Throws std::invalid_argument if the interfaces mismatch or the
  /// oracle itself has key inputs (a locked netlist is not an oracle —
  /// simulating it would silently run under the all-false key and produce
  /// garbage responses).
  SatAttackResult attack(const netlist::Netlist& locked,
                         const netlist::Netlist& oracle) const;

 private:
  SatAttackConfig config_;
};

}  // namespace autolock::attack
