// MuxLink — GNN-based link-prediction attack on MUX locking (re-implemented
// from the DATE'22 paper's description; see DESIGN.md §4 for the substitution
// of our from-scratch GNN for the authors' DGCNN).
//
// Pipeline (self-supervised — no oracle, no second netlist needed):
//   1. Build the attacker graph (key MUXes and key inputs removed).
//   2. Train a link predictor on the locked design's own wires: existing
//      wires are positives, random non-adjacent pairs are negatives; each
//      sample is an enclosing subgraph with DRNL + gate-type features.
//   3. For every key bit, score the candidate links implied by key=0 vs
//      key=1 and pick the likelier side. The margin between the two sides
//      gives a confidence; bits below a threshold can be left undecided.
//
// Metrics follow the literature: *accuracy* (all bits, forced decision) is
// what the AutoLock paper uses as the GA fitness signal; *precision* is the
// correctness among confidently-decided bits.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/attack_graph.hpp"
#include "attacks/features.hpp"
#include "attacks/gnn.hpp"
#include "locking/mux_lock.hpp"
#include "netlist/netlist.hpp"

namespace autolock::attack {

struct MuxLinkConfig {
  SubgraphConfig subgraph;
  GnnConfig gnn;
  std::size_t epochs = 18;
  /// Cap on positive training links (negatives are matched 1:1).
  std::size_t max_train_links = 1000;
  /// Minimum probability margin between the two key-value hypotheses for a
  /// bit to count as "decided" in the thresholded (precision) metric.
  double decision_threshold = 0.05;
  /// Number of independently-initialized GNNs trained per attack; candidate
  /// probabilities are averaged across them before deciding. >1 trades
  /// training time for decision variance (use for final evaluations, keep
  /// at 1 inside GA fitness loops).
  std::size_t ensemble = 1;
  std::uint64_t seed = 0xA77AC4ULL;
};

struct MuxLinkResult {
  /// Forced 0/1 decision per key bit (indexed by key bit).
  std::vector<int> predicted_bits;
  /// Probability margin |p(key=0 side) - p(key=1 side)| per bit.
  std::vector<double> margins;
  /// Thresholded decision per bit: 0, 1, or -1 (undecided).
  std::vector<int> thresholded_bits;
  /// 1 iff the attack formed a key-MUX hypothesis for this bit. Key bits
  /// driven by non-MUX key gates (RLL XOR/XNOR, anti-SAT blocks) have no
  /// MUX link problem and stay 0; score() credits them as coin flips
  /// instead of letting the forced-0 default silently score on zero bits.
  std::vector<char> bit_attacked;
  double first_epoch_loss = 0.0;
  double last_epoch_loss = 0.0;
  std::size_t train_samples = 0;
};

struct MuxLinkScore {
  double accuracy = 0.0;          // forced decisions correct / all bits
                                  // (unattacked bits count 0.5 — coin flip)
  double precision = 0.0;         // correct / decided (thresholded)
  double decided_fraction = 0.0;  // decided / all bits
  double attacked_fraction = 0.0; // bits with a MUX hypothesis / all bits
  std::size_t key_bits = 0;
};

struct AttackScratch;

class MuxLinkAttack {
 public:
  explicit MuxLinkAttack(MuxLinkConfig config = {});

  /// Runs the attack on a locked netlist (attacker knowledge only).
  MuxLinkResult attack(const netlist::Netlist& locked) const;

  /// Scratch-reusing variant for evaluation loops; bit-identical results.
  MuxLinkResult attack(const netlist::Netlist& locked,
                       AttackScratch& scratch) const;

  /// Scores a result against the ground-truth key (evaluation only).
  static MuxLinkScore score(const MuxLinkResult& result,
                            const netlist::Key& correct_key);

  /// Convenience: attack + score in one call.
  MuxLinkScore run(const lock::LockedDesign& design) const {
    return score(attack(design.netlist), design.key);
  }

  MuxLinkScore run(const lock::LockedDesign& design,
                   AttackScratch& scratch) const {
    return score(attack(design.netlist, scratch), design.key);
  }

  const MuxLinkConfig& config() const noexcept { return config_; }

 private:
  MuxLinkConfig config_;
};

}  // namespace autolock::attack
