// Enclosing-subgraph extraction and node featurization for link prediction
// (the SEAL recipe MuxLink builds on).
//
// For a (candidate or training) link (u, v) we extract the h-hop enclosing
// subgraph around {u, v} in the attacker graph, always *without* the (u, v)
// edge itself, and label every node with DRNL — Double-Radius Node Labeling
// — which encodes its distances to both endpoints. Node features are the
// concatenation of a capped one-hot DRNL label, a one-hot gate type, and a
// normalized global degree.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/attack_graph.hpp"
#include "netlist/netlist.hpp"
#include "util/epoch_flags.hpp"

namespace autolock::attack {

/// DRNL labels above this value are clamped (one-hot size = kDrnlCap + 1,
/// label 0 = unreachable from an endpoint).
inline constexpr std::uint32_t kDrnlCap = 10;

/// Feature vector length per node: one-hot DRNL ++ one-hot gate type ++
/// endpoint-role flags (driver endpoint, sink endpoint) ++ normalized degree.
/// The role flags give the (otherwise undirected) model the direction of the
/// queried link — a real wire always runs driver -> sink.
inline constexpr std::size_t kFeatureDim =
    (kDrnlCap + 1) + netlist::kGateTypeCount + 2 + 1;

/// A materialized enclosing subgraph ready for the GNN.
struct Subgraph {
  /// Local adjacency (indices into this subgraph; undirected, deduplicated).
  std::vector<std::vector<std::uint32_t>> adjacency;
  /// Row-major n x kFeatureDim feature matrix.
  std::vector<double> features;
  std::size_t node_count = 0;
  /// Training label (1 = link exists); ignored for inference samples.
  double label = 0.0;
};

struct SubgraphConfig {
  std::uint32_t hops = 2;
  /// Hard cap on subgraph size (BFS order truncation); keeps the cost of a
  /// fitness evaluation bounded on large/high-fanout circuits.
  std::size_t max_nodes = 64;
};

/// Reusable extraction state (one per worker): epoch-stamped membership
/// marks plus the member/hop/label staging vectors that the allocating
/// variant re-creates per call.
struct SubgraphScratch {
  util::EpochFlags member_marks;
  std::vector<std::uint32_t> local_of;  // valid only where member_marks set
  std::vector<netlist::NodeId> members;
  std::vector<std::uint32_t> hop;
};

/// Extracts the enclosing subgraph for link (u, v) over `graph`. The (u, v)
/// edge is omitted from the local adjacency in both directions (SEAL rule:
/// the model must never see the edge it is asked to predict).
Subgraph extract_subgraph(const AttackGraph& graph, netlist::NodeId u,
                          netlist::NodeId v, const SubgraphConfig& config);

/// Allocation-reusing variant: writes into `out` (buffers retained across
/// calls) using `scratch`. Produces exactly the same subgraph as
/// extract_subgraph.
void extract_subgraph_into(const AttackGraph& graph, netlist::NodeId u,
                           netlist::NodeId v, const SubgraphConfig& config,
                           SubgraphScratch& scratch, Subgraph& out);

/// Computes DRNL labels for a subgraph whose nodes 0 and 1 are the link
/// endpoints. Exposed for testing.
std::vector<std::uint32_t> drnl_labels(
    const std::vector<std::vector<std::uint32_t>>& adjacency);

}  // namespace autolock::attack
